#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/faults.h"
#include "net/gossip.h"
#include "net/network.h"

namespace shardchain {
namespace {

Bytes Payload(const std::string& s) { return Bytes(s.begin(), s.end()); }

// --- FaultPlan ------------------------------------------------------

TEST(FaultPlanTest, DecisionsAreDeterministicPerLink) {
  FaultConfig config;
  config.drop_probability = 0.4;
  config.duplicate_probability = 0.2;
  config.delay_multiplier_max = 3.0;

  FaultPlan a(config, 77);
  FaultPlan b(config, 77);
  // Interleave the links differently in the two plans: per-link
  // counters must make the outcomes identical anyway.
  std::vector<bool> drops_a, drops_b;
  for (int i = 0; i < 50; ++i) {
    drops_a.push_back(a.ShouldDrop(1, 2));
    drops_a.push_back(a.ShouldDrop(3, 4));
  }
  for (int i = 0; i < 50; ++i) drops_b.push_back(b.ShouldDrop(1, 2));
  for (int i = 0; i < 50; ++i) drops_b.push_back(b.ShouldDrop(3, 4));
  // Same per-link sequences, different global interleaving: compare
  // per link.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(drops_a[2 * i], drops_b[i]) << "link 1->2 attempt " << i;
    EXPECT_EQ(drops_a[2 * i + 1], drops_b[50 + i]) << "link 3->4 attempt " << i;
  }
  EXPECT_DOUBLE_EQ(a.DelayMultiplier(5, 6), b.DelayMultiplier(5, 6));
}

TEST(FaultPlanTest, DifferentSeedsDifferentCoins) {
  FaultConfig config;
  config.drop_probability = 0.5;
  FaultPlan a(config, 1);
  FaultPlan b(config, 2);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.ShouldDrop(0, 1) != b.ShouldDrop(0, 1)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, DropRateTracksProbability) {
  FaultConfig config;
  config.drop_probability = 0.3;
  FaultPlan plan(config, 9);
  int drops = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (plan.ShouldDrop(0, 1)) ++drops;
  }
  const double rate = static_cast<double>(drops) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.05);
  EXPECT_EQ(plan.drops_injected(), static_cast<uint64_t>(drops));
}

TEST(FaultPlanTest, CrashesTakeEffectAtTheirInstant) {
  FaultConfig config;
  config.crashes = {{3, 1.5}, {7, 0.0}};
  FaultPlan plan(config, 1);
  EXPECT_FALSE(plan.IsCrashed(3, 1.0));
  EXPECT_TRUE(plan.IsCrashed(3, 1.5));
  EXPECT_TRUE(plan.IsCrashed(3, 99.0));
  EXPECT_TRUE(plan.IsCrashed(7, 0.0));
  EXPECT_FALSE(plan.IsCrashed(0, 99.0));
}

TEST(FaultPlanTest, PartitionCutsIslandBoundaryOnly) {
  FaultConfig config;
  config.partitions = {{1.0, 2.0, {0, 1, 2}}};
  FaultPlan plan(config, 1);
  // Before and after the window: nothing is cut.
  EXPECT_FALSE(plan.LinkCut(0, 5, 0.5));
  EXPECT_FALSE(plan.LinkCut(0, 5, 2.0));
  // Inside the window: island <-> rest is cut, intra-side links work.
  EXPECT_TRUE(plan.LinkCut(0, 5, 1.5));
  EXPECT_TRUE(plan.LinkCut(5, 0, 1.5));
  EXPECT_FALSE(plan.LinkCut(0, 1, 1.5));
  EXPECT_FALSE(plan.LinkCut(5, 6, 1.5));
}

TEST(FaultPlanTest, DelayMultiplierStaysInRange) {
  FaultConfig config;
  config.delay_multiplier_max = 4.0;
  FaultPlan plan(config, 3);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      const double m = plan.DelayMultiplier(a, b);
      EXPECT_GE(m, 1.0);
      EXPECT_LE(m, 4.0);
    }
  }
  // Default config: no extra delay.
  FaultPlan none(FaultConfig{}, 3);
  EXPECT_DOUBLE_EQ(none.DelayMultiplier(0, 1), 1.0);
}

// --- Gossip recovery under faults -----------------------------------

TEST(GossipFaultsTest, FloodSurvivesHeavyLoss) {
  Rng rng(11);
  GossipNetwork net(40, {}, &rng);
  FaultConfig config;
  config.drop_probability = 0.30;
  FaultPlan plan(config, 42);
  net.SetFaultPlan(&plan);

  EventQueue queue;
  std::set<NodeId> reached;
  net.SetHandler([&](NodeId node, const Bytes&, SimTime) {
    reached.insert(node);
  });
  net.Publish(0, Payload("block"), &queue);
  queue.RunAll();

  EXPECT_EQ(reached.size(), 40u) << "flood must recover from 30% loss";
  EXPECT_GT(net.MessagesLost(), 0u);
  EXPECT_GT(net.Retransmissions(), 0u);
  EXPECT_EQ(net.ActiveFloods(), 0u) << "flood state must be pruned";
}

TEST(GossipFaultsTest, CrashedNodesNeitherReceiveNorRelay) {
  Rng rng(12);
  GossipNetwork net(30, {}, &rng);
  FaultConfig config;
  config.crashes = {{4, 0.0}, {9, 0.0}, {17, 0.0}};
  FaultPlan plan(config, 5);
  net.SetFaultPlan(&plan);

  EventQueue queue;
  std::set<NodeId> reached;
  net.SetHandler([&](NodeId node, const Bytes&, SimTime) {
    reached.insert(node);
  });
  net.Publish(0, Payload("x"), &queue);
  queue.RunAll();

  EXPECT_EQ(reached.size(), 27u);
  EXPECT_EQ(reached.count(4), 0u);
  EXPECT_EQ(reached.count(9), 0u);
  EXPECT_EQ(reached.count(17), 0u);
}

TEST(GossipFaultsTest, HealedPartitionIsRepaired) {
  Rng rng(13);
  GossipNetwork net(20, {}, &rng);
  FaultConfig config;
  // Nodes 10..19 cut off from the start; the window heals at t=2.
  PartitionWindow window;
  window.start = 0.0;
  window.end = 2.0;
  for (NodeId n = 10; n < 20; ++n) window.island.push_back(n);
  config.partitions = {window};
  FaultPlan plan(config, 6);
  net.SetFaultPlan(&plan);

  EventQueue queue;
  std::set<NodeId> reached;
  SimTime last_arrival = 0.0;
  net.SetHandler([&](NodeId node, const Bytes&, SimTime when) {
    reached.insert(node);
    last_arrival = std::max(last_arrival, when);
  });
  net.Publish(0, Payload("cross"), &queue);
  queue.RunAll();

  EXPECT_EQ(reached.size(), 20u) << "flood must cross after the heal";
  EXPECT_GE(last_arrival, 2.0) << "island nodes can only hear post-heal";
  EXPECT_GT(plan.cuts_hit(), 0u);
}

TEST(GossipFaultsTest, DuplicatesAreDeliveredOnce) {
  Rng rng(14);
  GossipNetwork net(25, {}, &rng);
  FaultConfig config;
  config.duplicate_probability = 0.5;
  FaultPlan plan(config, 7);
  net.SetFaultPlan(&plan);

  EventQueue queue;
  std::vector<int> deliveries(25, 0);
  net.SetHandler([&](NodeId node, const Bytes&, SimTime) {
    ++deliveries[node];
  });
  net.Publish(3, Payload("dup"), &queue);
  queue.RunAll();

  EXPECT_GT(plan.duplicates_injected(), 0u);
  for (int d : deliveries) EXPECT_EQ(d, 1);
}

TEST(GossipFaultsTest, FaultFreeBehaviourUnchangedByAttachment) {
  // A FaultPlan with default (all-zero) config must not alter the
  // flood: same deliveries, no retries, no repair traffic.
  Rng rng1(15);
  GossipNetwork clean(30, {}, &rng1);
  Rng rng2(15);
  GossipNetwork faulty(30, {}, &rng2);
  FaultPlan plan(FaultConfig{}, 1);
  faulty.SetFaultPlan(&plan);

  SimTime clean_last = 0.0, faulty_last = 0.0;
  EventQueue q1, q2;
  clean.SetHandler([&](NodeId, const Bytes&, SimTime when) {
    clean_last = std::max(clean_last, when);
  });
  faulty.SetHandler([&](NodeId, const Bytes&, SimTime when) {
    faulty_last = std::max(faulty_last, when);
  });
  clean.Publish(0, Payload("same"), &q1);
  faulty.Publish(0, Payload("same"), &q2);
  q1.RunAll();
  q2.RunAll();

  EXPECT_DOUBLE_EQ(clean_last, faulty_last);
  EXPECT_EQ(clean.MessagesSent(), faulty.MessagesSent());
  EXPECT_EQ(faulty.Retransmissions(), 0u);
  EXPECT_EQ(faulty.MessagesLost(), 0u);
}

TEST(GossipFaultsTest, SpreadReportCountsRecoveryTraffic) {
  Rng rng(16);
  GossipNetwork net(30, {}, &rng);
  FaultConfig config;
  config.drop_probability = 0.25;
  FaultPlan plan(config, 8);
  net.SetFaultPlan(&plan);

  EventQueue queue;
  const GossipNetwork::SpreadReport report =
      net.MeasureSpread(0, Payload("measured"), &queue);
  EXPECT_EQ(report.reached, 30u);
  EXPECT_GT(report.lost, 0u);
  EXPECT_GT(report.retransmissions, 0u);
  EXPECT_GE(report.time_to_all, report.time_to_half);
}

// --- Network (abstract counter) fault hooks -------------------------

TEST(NetworkFaultsTest, ShardOfIsTotalForUnregisteredNodes) {
  Network net;
  EXPECT_EQ(net.ShardOf(1234), kUnassignedShard);
  net.Register(7, 2);
  EXPECT_EQ(net.ShardOf(7), 2u);
  EXPECT_EQ(net.ShardOf(8), kUnassignedShard);
}

TEST(NetworkFaultsTest, SendsTouchingCrashedNodesAreSuppressed) {
  Network net;
  net.Register(0, 0);
  net.Register(1, 0);
  net.Register(2, 1);
  FaultConfig config;
  config.crashes = {{1, 1.0}};
  FaultPlan plan(config, 1);
  net.SetFaultPlan(&plan);

  EXPECT_TRUE(net.Send(0, 1, MsgKind::kTxGossip, 0.5));
  EXPECT_FALSE(net.Send(0, 1, MsgKind::kTxGossip, 1.5));
  EXPECT_FALSE(net.Send(1, 2, MsgKind::kTxGossip, 1.5));
  EXPECT_TRUE(net.Send(0, 2, MsgKind::kTxGossip, 1.5));
  EXPECT_EQ(net.SuppressedCount(), 2u);
}

TEST(NetworkFaultsTest, PartitionSuppressesCrossIslandSends) {
  Network net;
  for (NodeId n = 0; n < 4; ++n) net.Register(n, 0);
  FaultConfig config;
  config.partitions = {{0.0, 10.0, {0, 1}}};
  FaultPlan plan(config, 2);
  net.SetFaultPlan(&plan);

  EXPECT_TRUE(net.Send(0, 1, MsgKind::kTxGossip, 5.0));
  EXPECT_FALSE(net.Send(0, 2, MsgKind::kTxGossip, 5.0));
  EXPECT_TRUE(net.Send(0, 2, MsgKind::kTxGossip, 10.0));
}

}  // namespace
}  // namespace shardchain
