#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/merkle.h"
#include "sim/workload.h"
#include "state/statedb.h"
#include "types/address.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

// --------------------------- Address ----------------------------------

TEST(AddressTest, ZeroDetection) {
  EXPECT_TRUE(Address::Zero().IsZero());
  EXPECT_FALSE(Addr(1).IsZero());
}

TEST(AddressTest, FromHashTakesTrailingBytes) {
  Hash256 h;
  for (int i = 0; i < 32; ++i) h.bytes[i] = static_cast<uint8_t>(i);
  const Address a = Address::FromHash(h);
  EXPECT_EQ(a.bytes[0], 12);
  EXPECT_EQ(a.bytes[19], 31);
}

TEST(AddressTest, ContractAddressDependsOnCreatorAndNonce) {
  const Address c = Addr(5);
  EXPECT_EQ(Address::ForContract(c, 0), Address::ForContract(c, 0));
  EXPECT_NE(Address::ForContract(c, 0), Address::ForContract(c, 1));
  EXPECT_NE(Address::ForContract(c, 0), Address::ForContract(Addr(6), 0));
}

TEST(AddressTest, HexHasPrefix) {
  EXPECT_EQ(Address::Zero().ToHex(),
            "0x0000000000000000000000000000000000000000");
}

// -------------------------- Transaction --------------------------------

TEST(TransactionTest, IdIsDeterministic) {
  Transaction tx;
  tx.sender = Addr(1);
  tx.recipient = Addr(2);
  tx.fee = 7;
  EXPECT_EQ(tx.Id(), tx.Id());
}

TEST(TransactionTest, IdChangesWithEveryField) {
  Transaction base;
  base.sender = Addr(1);
  base.recipient = Addr(2);
  base.kind = TxKind::kContractCall;
  base.value = 10;
  base.fee = 5;
  base.nonce = 3;
  const Hash256 id = base.Id();

  Transaction t = base;
  t.sender = Addr(9);
  EXPECT_NE(t.Id(), id);
  t = base;
  t.recipient = Addr(9);
  EXPECT_NE(t.Id(), id);
  t = base;
  t.kind = TxKind::kDirectTransfer;
  EXPECT_NE(t.Id(), id);
  t = base;
  t.value = 11;
  EXPECT_NE(t.Id(), id);
  t = base;
  t.fee = 6;
  EXPECT_NE(t.Id(), id);
  t = base;
  t.nonce = 4;
  EXPECT_NE(t.Id(), id);
  t = base;
  t.payload = {0x01};
  EXPECT_NE(t.Id(), id);
  t = base;
  t.input_accounts.push_back(Addr(3));
  EXPECT_NE(t.Id(), id);
}

TEST(TransactionTest, InputCountIncludesSender) {
  Transaction tx;
  EXPECT_EQ(tx.InputCount(), 1u);
  tx.input_accounts = {Addr(1), Addr(2)};
  EXPECT_EQ(tx.InputCount(), 3u);
}

TEST(TransactionTest, KindNames) {
  EXPECT_STREQ(TxKindName(TxKind::kDirectTransfer), "DirectTransfer");
  EXPECT_STREQ(TxKindName(TxKind::kContractCall), "ContractCall");
  EXPECT_STREQ(TxKindName(TxKind::kContractDeploy), "ContractDeploy");
}

// ----------------------------- Block -----------------------------------

TEST(BlockTest, TxRootMatchesMerkleOfIds) {
  Block block;
  for (int i = 0; i < 5; ++i) {
    Transaction tx;
    tx.sender = Addr(static_cast<uint8_t>(i + 1));
    tx.fee = static_cast<Amount>(i);
    block.transactions.push_back(tx);
  }
  std::vector<Hash256> ids;
  for (const auto& tx : block.transactions) ids.push_back(tx.Id());
  EXPECT_EQ(block.ComputeTxRoot(), MerkleRoot(ids));
}

TEST(BlockTest, EmptyBlockDetection) {
  Block block;
  EXPECT_TRUE(block.IsEmpty());
  EXPECT_TRUE(block.ComputeTxRoot().IsZero());
  block.transactions.emplace_back();
  EXPECT_FALSE(block.IsEmpty());
}

TEST(BlockTest, TotalFeesSums) {
  Block block;
  for (Amount f : {3u, 5u, 7u}) {
    Transaction tx;
    tx.fee = f;
    block.transactions.push_back(tx);
  }
  EXPECT_EQ(block.TotalFees(), 15u);
}

TEST(BlockHeaderTest, HashCoversShardIdAndMiner) {
  BlockHeader h;
  const Hash256 base = h.Hash();
  h.shard_id = 3;
  EXPECT_NE(h.Hash(), base);
  h.shard_id = 0;
  h.miner = Addr(1);
  EXPECT_NE(h.Hash(), base);
  h.miner = Address::Zero();
  h.nonce = 42;
  EXPECT_NE(h.Hash(), base);
  h.nonce = 0;
  EXPECT_EQ(h.Hash(), base);
}

// ---------------------------- StateDB ----------------------------------

TEST(StateDBTest, MissingAccountReadsAsEmpty) {
  StateDB db;
  EXPECT_EQ(db.BalanceOf(Addr(1)), 0u);
  EXPECT_EQ(db.NonceOf(Addr(1)), 0u);
  EXPECT_FALSE(db.IsContract(Addr(1)));
  EXPECT_EQ(db.Find(Addr(1)), nullptr);
}

TEST(StateDBTest, MintAndTransfer) {
  StateDB db;
  db.Mint(Addr(1), 100);
  EXPECT_TRUE(db.Transfer(Addr(1), Addr(2), 40).ok());
  EXPECT_EQ(db.BalanceOf(Addr(1)), 60u);
  EXPECT_EQ(db.BalanceOf(Addr(2)), 40u);
}

TEST(StateDBTest, TransferFailsOnInsufficientBalance) {
  StateDB db;
  db.Mint(Addr(1), 10);
  EXPECT_TRUE(db.Transfer(Addr(1), Addr(2), 11).IsFailedPrecondition());
  EXPECT_EQ(db.BalanceOf(Addr(1)), 10u);
  EXPECT_EQ(db.BalanceOf(Addr(2)), 0u);
}

TEST(StateDBTest, DeployContractOnceOnly) {
  StateDB db;
  EXPECT_TRUE(db.DeployContract(Addr(3), {0x01}).ok());
  EXPECT_TRUE(db.IsContract(Addr(3)));
  EXPECT_TRUE(db.DeployContract(Addr(3), {0x02}).IsAlreadyExists());
}

TEST(StateDBTest, StorageDefaultsToZero) {
  StateDB db;
  EXPECT_EQ(db.StorageGet(Addr(1), 5), 0);
  db.StorageSet(Addr(1), 5, -17);
  EXPECT_EQ(db.StorageGet(Addr(1), 5), -17);
}

TEST(StateDBTest, SnapshotRevertRestoresEverything) {
  StateDB db;
  db.Mint(Addr(1), 100);
  db.StorageSet(Addr(2), 1, 11);
  const Hash256 root_before = db.StateRoot();
  const size_t snap = db.Snapshot();

  ASSERT_TRUE(db.Transfer(Addr(1), Addr(3), 50).ok());
  db.StorageSet(Addr(2), 1, 99);
  ASSERT_TRUE(db.DeployContract(Addr(4), {0x01}).ok());
  EXPECT_NE(db.StateRoot(), root_before);

  ASSERT_TRUE(db.RevertTo(snap).ok());
  EXPECT_EQ(db.StateRoot(), root_before);
  EXPECT_EQ(db.BalanceOf(Addr(1)), 100u);
  EXPECT_EQ(db.StorageGet(Addr(2), 1), 11);
  EXPECT_FALSE(db.IsContract(Addr(4)));
}

TEST(StateDBTest, RevertToUnknownSnapshotFails) {
  StateDB db;
  EXPECT_TRUE(db.RevertTo(3).IsOutOfRange());
}

TEST(StateDBTest, NestedSnapshots) {
  StateDB db;
  db.Mint(Addr(1), 10);
  const size_t s1 = db.Snapshot();
  db.Mint(Addr(1), 10);
  const size_t s2 = db.Snapshot();
  db.Mint(Addr(1), 10);
  ASSERT_TRUE(db.RevertTo(s2).ok());
  EXPECT_EQ(db.BalanceOf(Addr(1)), 20u);
  ASSERT_TRUE(db.RevertTo(s1).ok());
  EXPECT_EQ(db.BalanceOf(Addr(1)), 10u);
  // s2 was invalidated by the revert to s1.
  EXPECT_TRUE(db.RevertTo(s2).IsOutOfRange());
}

TEST(StateDBTest, StateRootIsOrderIndependentOfInsertion) {
  StateDB a;
  a.Mint(Addr(1), 5);
  a.Mint(Addr(2), 7);
  StateDB b;
  b.Mint(Addr(2), 7);
  b.Mint(Addr(1), 5);
  EXPECT_EQ(a.StateRoot(), b.StateRoot());
}

TEST(StateDBTest, StateRootSensitiveToBalances) {
  StateDB a;
  a.Mint(Addr(1), 5);
  StateDB b;
  b.Mint(Addr(1), 6);
  EXPECT_NE(a.StateRoot(), b.StateRoot());
}

// --------------------------- Workload ----------------------------------

TEST(WorkloadTest, UniformSpreadsAcrossContracts) {
  Rng rng(100);
  WorkloadConfig config;
  config.num_transactions = 900;
  config.num_contracts = 9;
  const Workload w = GenerateWorkload(config, &rng);
  ASSERT_EQ(w.transactions.size(), 900u);
  const auto counts = w.PerContractCounts();
  ASSERT_EQ(counts.size(), 9u);
  for (size_t c : counts) {
    EXPECT_GT(c, 60u);
    EXPECT_LT(c, 140u);
  }
}

TEST(WorkloadTest, SendersAreFreshAndSingleContract) {
  Rng rng(101);
  WorkloadConfig config;
  config.num_transactions = 50;
  const Workload w = GenerateWorkload(config, &rng);
  std::set<Address> senders;
  for (const auto& tx : w.transactions) {
    EXPECT_EQ(tx.kind, TxKind::kContractCall);
    EXPECT_TRUE(tx.input_accounts.empty());
    senders.insert(tx.sender);
  }
  EXPECT_EQ(senders.size(), w.transactions.size());
}

TEST(WorkloadTest, MaxShardFractionProducesUnshardableTxs) {
  Rng rng(102);
  WorkloadConfig config;
  config.num_transactions = 400;
  config.maxshard_fraction = 0.5;
  const Workload w = GenerateWorkload(config, &rng);
  size_t maxshard = 0;
  for (int c : w.contract_of) {
    if (c < 0) ++maxshard;
  }
  EXPECT_GT(maxshard, 120u);
  EXPECT_LT(maxshard, 280u);
}

TEST(WorkloadTest, FeesArePositive) {
  Rng rng(103);
  WorkloadConfig config;
  config.num_transactions = 200;
  const Workload w = GenerateWorkload(config, &rng);
  for (const auto& tx : w.transactions) EXPECT_GT(tx.fee, 0u);
}

TEST(WorkloadTest, ZipfConcentratesOnPopularContract) {
  Rng rng(104);
  WorkloadConfig config;
  config.num_transactions = 1000;
  config.num_contracts = 10;
  config.popularity = ContractPopularity::kZipf;
  config.zipf_exponent = 1.2;
  const Workload w = GenerateWorkload(config, &rng);
  const auto counts = w.PerContractCounts();
  const size_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 1000u / 10u * 2u);  // Far above uniform share.
}

TEST(WorkloadTest, KInputTransactionsCarryExtras) {
  Rng rng(105);
  const auto txs = GenerateKInputTransactions(20, 3, 5, &rng);
  ASSERT_EQ(txs.size(), 20u);
  for (const auto& tx : txs) {
    EXPECT_EQ(tx.InputCount(), 3u);
    EXPECT_EQ(tx.fee, 5u);
  }
}

TEST(WorkloadTest, FundWorkloadCoversCosts) {
  Rng rng(106);
  WorkloadConfig config;
  config.num_transactions = 30;
  const Workload w = GenerateWorkload(config, &rng);
  StateDB state;
  FundWorkload(w.transactions, &state);
  for (const auto& tx : w.transactions) {
    EXPECT_GE(state.BalanceOf(tx.sender), tx.fee + tx.value);
  }
}

TEST(WorkloadTest, EqualFeeModel) {
  Rng rng(107);
  WorkloadConfig config;
  config.fee_model = FeeModel::kEqual;
  config.fee_equal = 42;
  EXPECT_EQ(DrawFee(config, &rng), 42u);
}

TEST(WorkloadTest, UniformFeeModelInRange) {
  Rng rng(108);
  WorkloadConfig config;
  config.fee_model = FeeModel::kUniform;
  config.fee_uniform_lo = 10;
  config.fee_uniform_hi = 20;
  for (int i = 0; i < 100; ++i) {
    const Amount f = DrawFee(config, &rng);
    EXPECT_GE(f, 10u);
    EXPECT_LE(f, 20u);
  }
}

// --------------------- Adversarial workload ----------------------------

/// Flat comparable fingerprint of one transaction, enough to detect any
/// divergence between two generated traces.
std::vector<std::tuple<Address, Address, uint64_t, Amount, Amount, int>>
Fingerprint(const Workload& w) {
  std::vector<std::tuple<Address, Address, uint64_t, Amount, Amount, int>> out;
  for (size_t i = 0; i < w.transactions.size(); ++i) {
    const Transaction& tx = w.transactions[i];
    out.emplace_back(tx.sender, tx.recipient, tx.nonce, tx.fee, tx.value,
                     w.contract_of[i]);
  }
  return out;
}

TEST(AdversarialWorkloadTest, SameSeedProducesIdenticalTrace) {
  AdversarialWorkloadConfig config;
  config.base.num_transactions = 120;
  AdversarialWorkloadStream a(config, 77);
  AdversarialWorkloadStream b(config, 77);
  for (int epoch = 0; epoch < 5; ++epoch) {
    EXPECT_EQ(Fingerprint(a.NextEpoch()), Fingerprint(b.NextEpoch()))
        << "epoch " << epoch;
  }
  AdversarialWorkloadStream c(config, 78);
  a = AdversarialWorkloadStream(config, 77);
  EXPECT_NE(Fingerprint(a.NextEpoch()), Fingerprint(c.NextEpoch()));
}

TEST(AdversarialWorkloadTest, FlashEpochsFollowThePeriod) {
  AdversarialWorkloadConfig config;
  config.base.num_transactions = 40;
  config.flash_period = 3;
  AdversarialWorkloadStream stream(config, 9);
  for (int epoch = 1; epoch <= 9; ++epoch) {
    stream.NextEpoch();
    EXPECT_EQ(stream.LastEpochWasFlash(), epoch % 3 == 0) << epoch;
    if (epoch % 3 == 0) {
      EXPECT_GE(stream.LastHotContract(), 0);
    } else {
      EXPECT_EQ(stream.LastHotContract(), -1);
    }
  }
}

TEST(AdversarialWorkloadTest, FlashCrowdConcentratesOnHotContract) {
  AdversarialWorkloadConfig config;
  config.base.num_transactions = 1000;
  config.base.num_contracts = 10;
  config.flash_period = 1;  // Every epoch is a flash.
  config.flash_crowd_share = 0.8;
  config.returning_fraction = 0.0;
  AdversarialWorkloadStream stream(config, 5);
  const Workload w = stream.NextEpoch();
  ASSERT_GE(stream.LastHotContract(), 0);
  const auto counts = w.PerContractCounts();
  // The hot contract absorbs well above the Zipf-head share.
  EXPECT_GT(counts[static_cast<size_t>(stream.LastHotContract())], 600u);
}

TEST(AdversarialWorkloadTest, ReturningSendersCallOnlyTheirHomeContract) {
  // The order-invariance contract: within one epoch, every pool sender
  // calls exactly one contract — its (possibly freshly switched) home —
  // with strictly increasing nonces.
  AdversarialWorkloadConfig config;
  config.base.num_transactions = 600;
  config.returning_fraction = 0.5;
  config.contract_switch_probability = 0.5;
  AdversarialWorkloadStream stream(config, 21);
  for (int epoch = 0; epoch < 4; ++epoch) {
    const Workload w = stream.NextEpoch();
    std::map<Address, std::set<Address>> called;
    std::map<Address, uint64_t> last_nonce;
    const std::set<Address> pool(stream.ReturningSenders().begin(),
                                 stream.ReturningSenders().end());
    size_t pool_txs = 0;
    for (const Transaction& tx : w.transactions) {
      if (pool.count(tx.sender) == 0) continue;
      ++pool_txs;
      called[tx.sender].insert(tx.recipient);
      auto it = last_nonce.find(tx.sender);
      if (it != last_nonce.end()) {
        EXPECT_GT(tx.nonce, it->second);
      }
      last_nonce[tx.sender] = tx.nonce;
    }
    EXPECT_GT(pool_txs, 100u);
    for (const auto& [sender, contracts] : called) {
      EXPECT_EQ(contracts.size(), 1u)
          << "pool sender touched two contracts within one epoch";
    }
  }
}

TEST(AdversarialWorkloadTest, FlashEpochsCarryInflatedFees) {
  AdversarialWorkloadConfig config;
  config.base.num_transactions = 2000;
  config.base.fee_model = FeeModel::kEqual;
  config.base.fee_equal = 10;
  config.flash_period = 2;
  config.fee_attack_fraction = 0.2;
  config.fee_attack_multiplier = 8.0;
  AdversarialWorkloadStream stream(config, 33);
  const Workload calm = stream.NextEpoch();   // epoch 1: no flash
  const Workload flash = stream.NextEpoch();  // epoch 2: flash
  ASSERT_FALSE(stream.EpochsGenerated() != 2 || !stream.LastEpochWasFlash());
  auto inflated = [](const Workload& w) {
    size_t n = 0;
    for (const auto& tx : w.transactions) {
      if (tx.fee > 10) ++n;
    }
    return n;
  };
  EXPECT_EQ(inflated(calm), 0u);
  const size_t hits = inflated(flash);
  EXPECT_GT(hits, 250u);
  EXPECT_LT(hits, 550u);
  for (const auto& tx : flash.transactions) {
    if (tx.fee > 10) {
      EXPECT_EQ(tx.fee, 80u);
    }
  }
}

}  // namespace
}  // namespace shardchain
