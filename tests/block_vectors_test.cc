// Golden-vector pinning of built blocks: five fixed block-building
// scenarios whose encoded block bytes and state roots are committed as
// hex snapshots under tests/vectors/block{0..4}.hex. Each scenario is
// built twice — serially and with a 3-thread exec pool — and asserts
// bitwise identity between the two before comparing against the pinned
// snapshot, so the vectors gate both the codec/execution semantics and
// the conflict-aware parallel builder at once (DESIGN.md §13). A
// shifted byte here is a consensus fork in deployment.
//
// Regenerate deliberately with:
//   SHARDCHAIN_REGEN_VECTORS=1 ./shardchain_tests
//   --gtest_filter='BlockVectors.*'

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chain/ledger.h"
#include "common/hex.h"
#include "contract/registry.h"
#include "contract/vm.h"
#include "parallel/thread_pool.h"
#include "types/codec.h"

namespace shardchain {
namespace {

#ifndef SHARDCHAIN_TEST_VECTOR_DIR
#error "SHARDCHAIN_TEST_VECTOR_DIR must point at tests/vectors"
#endif

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Transaction Pay(const Address& from, const Address& to, Amount value,
                Amount fee, uint64_t nonce = 0) {
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  tx.sender = from;
  tx.recipient = to;
  tx.value = value;
  tx.fee = fee;
  tx.nonce = nonce;
  return tx;
}

struct BlockScenario {
  StateDB genesis;
  std::vector<Transaction> txs;
  ChainConfig config;
};

/// The five pinned scenarios. Every address, amount, and payload is a
/// literal, so the inputs can never drift.
BlockScenario Scenario(int k) {
  BlockScenario s;
  switch (k) {
    case 0:
      // Degenerate: empty candidate list, reward-only block.
      s.genesis.Mint(Addr(0x01), 100);
      break;
    case 1: {
      // Simple independent transfers: fully parallelizable.
      for (uint8_t i = 1; i <= 8; ++i) s.genesis.Mint(Addr(i), 1'000);
      for (uint8_t i = 1; i <= 8; ++i) {
        s.txs.push_back(Pay(Addr(i), Addr(0x40 + i), 10 * i, i));
      }
      break;
    }
    case 2: {
      // Transfers plus conditional/unconditional contract calls.
      const Address owner = Addr(0x01);
      s.genesis.Mint(owner, 10'000);
      s.genesis.Mint(Addr(0x02), 5'000);
      s.genesis.Mint(Addr(0x03), 5'000);
      Result<Address> uncond = ContractRegistry::Deploy(
          &s.genesis, owner, contracts::UnconditionalTransfer(Addr(0x70)));
      Result<Address> cond = ContractRegistry::Deploy(
          &s.genesis, owner, contracts::ConditionalTransfer(Addr(0x71), 50));
      EXPECT_TRUE(uncond.ok() && cond.ok());
      Transaction call_uncond = Pay(Addr(0x02), *uncond, 120, 4);
      call_uncond.kind = TxKind::kContractCall;
      Transaction call_cond = Pay(Addr(0x03), *cond, 80, 4);
      call_cond.kind = TxKind::kContractCall;
      s.txs.push_back(Pay(owner, Addr(0x02), 33, 2, /*nonce=*/2));
      s.txs.push_back(call_uncond);
      s.txs.push_back(call_cond);
      s.txs.push_back(Pay(Addr(0x02), Addr(0x03), 7, 1, /*nonce=*/1));
      break;
    }
    case 3: {
      // Capacity overflow plus invalid candidates skipped in place.
      s.config.max_txs_per_block = 4;
      for (uint8_t i = 1; i <= 8; ++i) s.genesis.Mint(Addr(i), 200);
      s.txs.push_back(Pay(Addr(1), Addr(0x50), 20, 2));
      s.txs.push_back(Pay(Addr(2), Addr(0x51), 9'999, 2));  // Unfundable.
      s.txs.push_back(Pay(Addr(3), Addr(0x52), 21, 2));
      s.txs.push_back(Pay(Addr(4), Addr(0x53), 22, 2, /*nonce=*/7));  // Bad.
      s.txs.push_back(Pay(Addr(5), Addr(0x54), 23, 2));
      s.txs.push_back(Pay(Addr(6), Addr(0x55), 24, 2));
      s.txs.push_back(Pay(Addr(7), Addr(0x56), 25, 2));  // Beyond the cap.
      s.txs.push_back(Pay(Addr(8), Addr(0x57), 26, 2));  // Beyond the cap.
      break;
    }
    default: {
      // In-block deploys (serial barriers) mixed with escrow traffic.
      const Address owner = Addr(0x01);
      s.genesis.Mint(owner, 20'000);
      s.genesis.Mint(Addr(0x02), 3'000);
      s.genesis.Mint(Addr(0x03), 3'000);
      Result<Address> escrow = ContractRegistry::Deploy(
          &s.genesis, owner, contracts::Escrow(Addr(0x72)));
      EXPECT_TRUE(escrow.ok());
      Transaction deploy = Pay(Addr(0x02), Address{}, 0, 5);
      deploy.kind = TxKind::kContractDeploy;
      deploy.payload = contracts::UnconditionalTransfer(Addr(0x73)).Serialize();
      Transaction fund_escrow = Pay(Addr(0x03), *escrow, 150, 3);
      fund_escrow.kind = TxKind::kContractCall;
      fund_escrow.payload = Vm::EncodeArgs({0});
      s.txs.push_back(Pay(owner, Addr(0x02), 40, 2, /*nonce=*/1));
      s.txs.push_back(deploy);
      s.txs.push_back(fund_escrow);
      s.txs.push_back(Pay(Addr(0x02), Addr(0x03), 11, 1, /*nonce=*/1));
      break;
    }
  }
  return s;
}

std::string VectorPath(int k) {
  return std::string(SHARDCHAIN_TEST_VECTOR_DIR) + "/block" +
         std::to_string(k) + ".hex";
}

void CheckScenario(int k) {
  const BlockScenario s = Scenario(k);
  const Address miner = Addr(0x99);

  Ledger serial_ledger(1, s.genesis, s.config);
  Result<Block> serial_built =
      serial_ledger.BuildBlock(miner, s.txs, /*timestamp=*/7);
  ASSERT_TRUE(serial_built.ok()) << serial_built.status().ToString();

  // Parallel build must be bitwise identical before the snapshot even
  // enters the picture.
  ThreadPool pool(3);
  Ledger parallel_ledger(1, s.genesis, s.config);
  parallel_ledger.SetExecPool(&pool);
  Result<Block> parallel_built =
      parallel_ledger.BuildBlock(miner, s.txs, /*timestamp=*/7);
  ASSERT_TRUE(parallel_built.ok()) << parallel_built.status().ToString();
  ASSERT_EQ(codec::EncodeBlock(*parallel_built),
            codec::EncodeBlock(*serial_built))
      << "serial and parallel builds diverged for block scenario " << k;

  const std::string block_hex = HexEncode(codec::EncodeBlock(*serial_built));
  const std::string root_hex =
      HexEncode(serial_built->header.state_root.bytes.data(),
                serial_built->header.state_root.bytes.size());

  const std::string path = VectorPath(k);
  if (std::getenv("SHARDCHAIN_REGEN_VECTORS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << block_hex << "\n" << root_hex << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden vector " << path
                         << " (regenerate with SHARDCHAIN_REGEN_VECTORS=1)";
  std::string expected_block;
  std::string expected_root;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, expected_block)));
  ASSERT_TRUE(static_cast<bool>(std::getline(in, expected_root)));
  EXPECT_EQ(block_hex, expected_block)
      << "block bytes changed for scenario " << k
      << " — a consensus-visible encoding moved";
  EXPECT_EQ(root_hex, expected_root)
      << "state root changed for scenario " << k;
}

TEST(BlockVectors, Scenario0EmptyBlock) { CheckScenario(0); }
TEST(BlockVectors, Scenario1IndependentTransfers) { CheckScenario(1); }
TEST(BlockVectors, Scenario2ContractCalls) { CheckScenario(2); }
TEST(BlockVectors, Scenario3OverflowAndInvalid) { CheckScenario(3); }
TEST(BlockVectors, Scenario4DeploysAndEscrow) { CheckScenario(4); }

}  // namespace
}  // namespace shardchain
