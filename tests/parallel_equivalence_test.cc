// Differential serial-vs-parallel suite (ctest label: parallel): the
// consensus-critical outputs — merge plans, selection plans, unified
// parameters — are computed at thread counts {1, 2, 3, 4, 7, 8} and
// their PR-1 codec encodings are asserted byte-identical to the
// strictly serial threads=1 run. This is the Sec. IV-C requirement in
// executable form: a miner's plan bytes may not depend on how many
// cores her machine has. A chaos-suite schedule re-run with threads=4
// closes the loop end-to-end through the liveness simulator.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sharding_system.h"
#include "core/unification.h"
#include "core/unification_codec.h"
#include "crypto/merkle.h"
#include "crypto/vrf.h"
#include "net/faults.h"
#include "parallel/thread_pool.h"
#include "sim/liveness.h"

namespace shardchain {
namespace {

const size_t kThreadCounts[] = {1, 2, 3, 4, 7, 8};
constexpr uint64_t kNumSeeds = 20;

/// A randomized-but-seeded workload for the unified games: shard sizes
/// straddling L, a skewed fee vector, and a seed-derived randomness.
UnifiedParameters ParamsForSeed(uint64_t seed) {
  Rng rng(seed);
  UnifiedParameters params;
  params.randomness = Sha256Digest("parallel.eq." + std::to_string(seed));
  const size_t shards = 3 + rng.UniformInt(10);
  for (size_t s = 0; s < shards; ++s) {
    params.shard_sizes.push_back(1 + rng.UniformInt(
        params.merge_config.min_shard_size));
  }
  const size_t txs = 20 + rng.UniformInt(120);
  for (size_t t = 0; t < txs; ++t) {
    params.tx_fees.push_back(static_cast<Amount>(1 + rng.Zipf(50, 1.1)));
  }
  params.num_miners = 2 + rng.UniformInt(10);
  params.select_config.capacity = 5;
  // Small Monte-Carlo load so 20 seeds x 6 thread counts stay fast.
  params.merge_config.subslots = 16;
  params.merge_config.max_slots = 60;
  return params;
}

TEST(ParallelEquivalence, MergePlanBytesMatchSerialAtEveryThreadCount) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const UnifiedParameters params = ParamsForSeed(seed);
    const Bytes serial = codec::EncodeMergePlan(ComputeMergePlan(params));
    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      const Bytes parallel =
          codec::EncodeMergePlan(ComputeMergePlan(params, &pool));
      ASSERT_EQ(parallel, serial)
          << "merge plan bytes diverged: seed " << seed << ", " << threads
          << " threads";
    }
  }
}

TEST(ParallelEquivalence, SelectionPlanBytesMatchSerialAtEveryThreadCount) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const UnifiedParameters params = ParamsForSeed(seed);
    const Bytes serial =
        codec::EncodeSelectionPlan(ComputeSelectionPlan(params));
    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      const Bytes parallel =
          codec::EncodeSelectionPlan(ComputeSelectionPlan(params, &pool));
      ASSERT_EQ(parallel, serial)
          << "selection plan bytes diverged: seed " << seed << ", "
          << threads << " threads";
    }
  }
}

TEST(ParallelEquivalence, UnifiedParameterBytesRoundTripUnchanged) {
  // The broadcast itself is computed serially, but every thread count
  // must decode it to a value that re-encodes to the same bytes —
  // plan computation may never mutate its inputs.
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const UnifiedParameters params = ParamsForSeed(seed);
    const Bytes wire = codec::EncodeUnifiedParameters(params);
    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      Result<UnifiedParameters> decoded =
          codec::DecodeUnifiedParameters(wire);
      ASSERT_TRUE(decoded.ok());
      (void)ComputeMergePlan(*decoded, &pool);
      (void)ComputeSelectionPlan(*decoded, &pool);
      ASSERT_EQ(codec::EncodeUnifiedParameters(*decoded), wire)
          << "parameters mutated: seed " << seed << ", " << threads
          << " threads";
    }
  }
}

TEST(ParallelEquivalence, MerkleRootAndVrfBatchesMatchSerial) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    Rng rng(seed ^ 0xabcdefull);
    std::vector<Hash256> leaves(1 + rng.UniformInt(700));
    for (Hash256& leaf : leaves) {
      leaf = Sha256Digest("leaf." + std::to_string(rng.Next()));
    }
    const Hash256 root = MerkleRoot(leaves);

    KeyPair key = KeyPair::Generate(&rng);
    const Hash256 vseed = Sha256Digest("vrf." + std::to_string(seed));
    const VrfOutput vrf = VrfEvaluate(key, vseed);
    std::vector<const KeyPair*> keys(5, &key);
    std::vector<const PublicKey*> pks(5, &key.public_key());
    std::vector<const VrfOutput*> outs(5, &vrf);

    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      ASSERT_EQ(MerkleRoot(leaves, &pool), root) << threads << " threads";
      const std::vector<VrfOutput> evals =
          VrfEvaluateBatch(keys, vseed, &pool);
      for (const VrfOutput& e : evals) {
        ASSERT_EQ(e.value, vrf.value);
        ASSERT_EQ(e.proof, vrf.proof);
      }
      const std::vector<uint8_t> valid =
          VrfVerifyBatch(pks, vseed, outs, &pool);
      ASSERT_EQ(valid, std::vector<uint8_t>(5, 1)) << threads << " threads";
    }
  }
}

TEST(ParallelEquivalence, ShardingSystemEpochIdenticalAcrossThreadCounts) {
  // Whole-system differential: drive identical workloads through one
  // system per thread count and compare every consensus-visible output.
  auto run = [](size_t threads) {
    ShardingSystemConfig config;
    config.parallel.threads = threads;
    ShardingSystem sys(config, /*seed=*/99);
    for (int m = 0; m < 6; ++m) sys.AddMiner();
    EXPECT_TRUE(sys.BeginEpoch(0).ok());
    // Shardable workload: each user only ever calls one contract, so
    // shards form around the 4 contracts (Sec. III-A) and the merge
    // plan plus per-shard fan-out have real work to do.
    Rng rng(1234);
    for (int t = 0; t < 60; ++t) {
      Transaction tx;
      const uint64_t c = rng.UniformInt(4);
      tx.kind = TxKind::kContractCall;
      tx.recipient =
          Address::FromHash(Sha256Digest("contract." + std::to_string(c)));
      tx.sender = Address::FromHash(Sha256Digest(
          "user." + std::to_string(c * 8 + rng.UniformInt(8))));
      tx.value = 1 + rng.UniformInt(50);
      tx.fee = 1 + rng.UniformInt(30);
      tx.nonce = static_cast<uint64_t>(t);
      (void)sys.SubmitTransaction(tx);
    }
    std::vector<Bytes> out;
    out.push_back(
        codec::EncodeMergePlan(sys.MergeSmallShards()));
    for (const ShardSelectionPlan& p : sys.ComputeShardSelectionPlans()) {
      out.push_back(codec::EncodeUnifiedParameters(p.params));
      out.push_back(codec::EncodeSelectionPlan(p.plan));
    }
    return out;
  };
  const std::vector<Bytes> serial = run(1);
  EXPECT_FALSE(serial.empty());
  for (const size_t threads : kThreadCounts) {
    ASSERT_EQ(run(threads), serial) << threads << " threads";
  }
}

// --- Chaos schedule at threads=4 -------------------------------------

LivenessConfig ChaosConfig(size_t threads) {
  LivenessConfig config;
  config.num_miners = 18;
  config.gossip.deterministic_latency = true;
  config.parallel.threads = threads;
  return config;
}

/// Same envelope as tests/chaos_suite.cc DrawFaults: at most 1/3
/// faulty, <=30% drop, partitions healing before the deadline.
FaultConfig DrawFaults(const LivenessConfig& config, Rng* rng,
                       const std::vector<NodeId>& ranking) {
  FaultConfig faults;
  faults.drop_probability = 0.30 * rng->UniformDouble();
  faults.duplicate_probability = 0.20 * rng->UniformDouble();
  faults.delay_multiplier_max = 1.0 + 1.5 * rng->UniformDouble();

  const size_t n = config.num_miners;
  size_t budget = rng->UniformInt(n / 3 + 1);
  std::set<NodeId> faulty;
  const size_t num_crashes = rng->UniformInt(budget / 2 + 1);
  for (size_t i = 0; i < num_crashes; ++i) {
    const NodeId victim = rng->Bernoulli(0.5) && i < ranking.size()
                              ? ranking[i]
                              : static_cast<NodeId>(rng->UniformInt(n));
    if (!faulty.insert(victim).second) continue;
    faults.crashes.push_back(
        {victim, config.decision_deadline * rng->UniformDouble()});
  }
  budget -= std::min(budget, faults.crashes.size());
  if (budget > 0 && rng->Bernoulli(0.7)) {
    PartitionWindow window;
    window.start = rng->UniformDouble() * (config.decision_deadline - 4.0);
    window.end = window.start +
                 rng->UniformDouble() *
                     (config.decision_deadline - 2.0 - window.start);
    while (window.island.size() < budget) {
      const NodeId node = static_cast<NodeId>(rng->UniformInt(n));
      if (!faulty.insert(node).second) continue;
      window.island.push_back(node);
    }
    if (!window.island.empty()) faults.partitions.push_back(window);
  }
  return faults;
}

TEST(ParallelEquivalence, ChaosScheduleAtFourThreadsNeverSplits) {
  // One full chaos schedule with the sim's pool at 4 threads: the
  // no-split invariant must hold, and every decision must be
  // byte-identical to the same schedule run strictly serially.
  auto run = [](size_t threads) {
    const LivenessConfig config = ChaosConfig(threads);
    EpochLivenessSim sim(config, /*seed=*/13);
    Rng rng(0x9e3779b97f4a7c15ull ^ 13);
    std::vector<EpochOutcome> outcomes;
    for (int epoch = 0; epoch < 3; ++epoch) {
      const FaultConfig fault_config =
          DrawFaults(config, &rng, sim.NextRanking());
      FaultPlan plan(fault_config, 13 * 1000 + epoch);
      outcomes.push_back(sim.RunEpoch(&plan));
    }
    return outcomes;
  };
  const std::vector<EpochOutcome> serial = run(1);
  const std::vector<EpochOutcome> parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    const EpochOutcome& s = serial[e];
    const EpochOutcome& p = parallel[e];
    ASSERT_TRUE(p.converged) << "SPLIT at threads=4, epoch " << e;
    ASSERT_EQ(s.decisions.size(), p.decisions.size());
    for (size_t m = 0; m < s.decisions.size(); ++m) {
      ASSERT_EQ(p.decisions[m].live, s.decisions[m].live)
          << "epoch " << e << " miner " << m;
      ASSERT_EQ(p.decisions[m].fallback, s.decisions[m].fallback)
          << "epoch " << e << " miner " << m;
      ASSERT_EQ(p.decisions[m].plan, s.decisions[m].plan)
          << "plan bytes diverged: epoch " << e << " miner " << m;
      ASSERT_EQ(p.decisions[m].randomness, s.decisions[m].randomness)
          << "epoch " << e << " miner " << m;
    }
  }
}

}  // namespace
}  // namespace shardchain
