#include <vector>

#include <gtest/gtest.h>

#include "analysis/storage.h"
#include "common/rng.h"
#include "common/stats.h"
#include "consensus/difficulty.h"
#include "consensus/pow.h"
#include "contract/analyzer.h"
#include "contract/assembler.h"
#include "contract/registry.h"
#include "sim/arrival.h"
#include "sim/pow_race.h"
#include "state/statedb.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

// ------------------------ Difficulty retargeting -------------------------

TEST(DifficultyTest, FastBlockRaisesDifficulty) {
  pow::RetargetConfig config;
  config.target_interval = 60.0;
  EXPECT_GT(pow::NextDifficulty(1 << 20, 5.0, config), 1u << 20);
}

TEST(DifficultyTest, SlowBlockLowersDifficulty) {
  pow::RetargetConfig config;
  config.target_interval = 60.0;
  EXPECT_LT(pow::NextDifficulty(1 << 20, 600.0, config), 1u << 20);
}

TEST(DifficultyTest, NeverBelowFloor) {
  pow::RetargetConfig config;
  config.min_difficulty = 1000;
  EXPECT_EQ(pow::NextDifficulty(1000, 1e9, config), 1000u);
}

TEST(DifficultyTest, DownwardAdjustmentClamped) {
  pow::RetargetConfig config;
  config.target_interval = 10.0;
  // Interval of 10^6 x target would be -99999 steps unclamped.
  const uint64_t d = 1 << 24;
  const uint64_t next = pow::NextDifficulty(d, 1e7, config);
  const uint64_t min_expected =
      d - (d / config.adjustment_divisor) * 99;
  EXPECT_EQ(next, min_expected);
}

TEST(DifficultyTest, SimulationConvergesToTargetInterval) {
  pow::RetargetConfig config;
  config.target_interval = 60.0;
  Rng rng(1);
  // Start far above equilibrium for this hashrate.
  const double hashrate = 1000.0;
  const auto trace =
      pow::SimulateRetargeting(1 << 26, hashrate, 4000, config, &rng);
  // go-Ethereum's +/-1-step rule equilibrates where P(interval<target)
  // balances the clamp; for exponential intervals that sits somewhat
  // above the target. The point: it is power-independent.
  const double eq1 = trace.EquilibriumInterval(500);
  Rng rng2(2);
  const auto trace2 =
      pow::SimulateRetargeting(1 << 26, hashrate * 8, 4000, config, &rng2);
  const double eq2 = trace2.EquilibriumInterval(500);
  EXPECT_NEAR(eq1, eq2, 0.35 * eq1);  // Same equilibrium despite 8x power.
  EXPECT_GT(eq1, 0.5 * config.target_interval);
  EXPECT_LT(eq1, 4.0 * config.target_interval);
}

TEST(DifficultyTest, EquilibriumDifficultyScalesWithPower) {
  pow::RetargetConfig config;
  config.target_interval = 60.0;
  EXPECT_EQ(pow::EquilibriumDifficulty(2000.0, config),
            2 * pow::EquilibriumDifficulty(1000.0, config));
}

// --------------------------- PoW race sim --------------------------------

TEST(PowRaceTest, CompletesAndCountsTxs) {
  PowRaceConfig config;
  config.num_miners = 3;
  config.retarget = false;
  config.propagation_delay = 0.0;
  Rng rng(3);
  const PowRaceResult r = RunPowRace(100, config, &rng);
  EXPECT_EQ(r.txs_confirmed, 100u);
  EXPECT_GT(r.completion_time, 0.0);
  EXPECT_GE(r.chain_blocks, 10u);
}

TEST(PowRaceTest, WithoutRetargetingMoreMinersAreFaster) {
  PowRaceConfig config;
  config.retarget = false;
  config.propagation_delay = 0.0;
  RunningStats one, eight;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng r1(100 + seed);
    Rng r8(200 + seed);
    PowRaceConfig c1 = config;
    c1.num_miners = 1;
    PowRaceConfig c8 = config;
    c8.num_miners = 8;
    one.Add(RunPowRace(200, c1, &r1).completion_time);
    eight.Add(RunPowRace(200, c8, &r8).completion_time);
  }
  // Counterfactual: ~8x faster without retargeting.
  EXPECT_LT(eight.mean(), one.mean() / 4.0);
}

TEST(PowRaceTest, WithRetargetingMoreMinersDoNotHelp) {
  // The Table I phenomenon: after warmup the commit rate tracks the
  // target interval regardless of power.
  PowRaceConfig config;
  config.retarget = true;
  config.retarget_config.target_interval = 60.0;
  config.warmup_blocks = 12000;
  config.propagation_delay = 0.0;
  RunningStats four, sixteen;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    PowRaceConfig c4 = config;
    c4.num_miners = 4;
    PowRaceConfig c16 = config;
    c16.num_miners = 16;
    Rng r4(300 + seed);
    Rng r16(400 + seed);
    four.Add(RunPowRace(100, c4, &r4).completion_time);
    sixteen.Add(RunPowRace(100, c16, &r16).completion_time);
  }
  // Within 40% of each other despite 4x the power.
  EXPECT_LT(sixteen.mean(), 1.4 * four.mean());
  EXPECT_GT(sixteen.mean(), 0.6 * four.mean());
}

TEST(PowRaceTest, PropagationDelayCreatesStaleBlocks) {
  PowRaceConfig config;
  config.num_miners = 8;
  config.retarget = false;
  config.propagation_delay = 20.0;  // Large vs the ~7.5 s interval.
  Rng rng(5);
  const PowRaceResult r = RunPowRace(500, config, &rng);
  EXPECT_GT(r.stale_blocks, 0u);
}

TEST(PowRaceTest, HorizonStopsUnfinishedRuns) {
  PowRaceConfig config;
  config.num_miners = 1;
  config.horizon_seconds = 10.0;  // Far less than one 60 s block.
  Rng rng(6);
  const PowRaceResult r = RunPowRace(1000, config, &rng);
  EXPECT_LT(r.txs_confirmed, 1000u);
  EXPECT_EQ(r.completion_time, 0.0);
}

// --------------------------- Static analyzer -----------------------------

ContractProgram Prog(const std::string& src, size_t parties = 0) {
  ContractProgram p;
  Result<Bytes> code = Assemble(src);
  EXPECT_TRUE(code.ok()) << code.status().ToString();
  p.code = *code;
  p.parties.resize(parties);
  return p;
}

TEST(AnalyzerTest, ValidStraightLineProgram) {
  const auto report = AnalyzeProgram(Prog("PUSH 1\nPUSH 2\nADD\nSTOP"));
  EXPECT_TRUE(report.valid);
  EXPECT_FALSE(report.may_underflow);
  EXPECT_EQ(report.max_stack, 2u);
  EXPECT_FALSE(report.has_loops);
  ASSERT_TRUE(report.gas_upper_bound.has_value());
  EXPECT_GE(*report.gas_upper_bound, 4 * Vm::kGasPerOp);
}

TEST(AnalyzerTest, DetectsUnderflow) {
  const auto report = AnalyzeProgram(Prog("ADD\nSTOP"));
  EXPECT_TRUE(report.valid);  // Structurally fine...
  EXPECT_TRUE(report.may_underflow);  // ...but pops an empty stack.
  EXPECT_TRUE(ValidateProgram(Prog("ADD\nSTOP")).IsInvalidArgument());
}

TEST(AnalyzerTest, DetectsLoop) {
  const auto report = AnalyzeProgram(Prog("loop:\nPUSH 1\nPOP\nJUMP loop"));
  EXPECT_TRUE(report.has_loops);
  EXPECT_FALSE(report.gas_upper_bound.has_value());
}

TEST(AnalyzerTest, BranchesMergeDepthRanges) {
  // One branch pushes an extra value; the merge keeps both depths.
  const auto report = AnalyzeProgram(
      Prog("PUSH 1\nJUMPI skip\nPUSH 7\nPUSH 8\nskip:\nSTOP"));
  EXPECT_TRUE(report.valid);
  EXPECT_FALSE(report.may_underflow);
  EXPECT_EQ(report.max_stack, 2u);
}

TEST(AnalyzerTest, RejectsMidInstructionJump) {
  // Offset 1 is inside the PUSH immediate.
  ContractProgram p;
  p.code = {static_cast<uint8_t>(Op::kJump), 0x00, 0x01,
            static_cast<uint8_t>(Op::kPush), 0, 0, 0, 0, 0, 0, 0, 1,
            static_cast<uint8_t>(Op::kStop)};
  // Jump target 1 is mid-instruction (kJump is 3 bytes; offset 1 is its
  // own immediate).
  const auto report = AnalyzeProgram(p);
  EXPECT_FALSE(report.valid);
}

TEST(AnalyzerTest, RejectsTruncatedInstruction) {
  ContractProgram p;
  p.code = {static_cast<uint8_t>(Op::kPush), 0x01};  // 8 bytes missing.
  EXPECT_FALSE(AnalyzeProgram(p).valid);
}

TEST(AnalyzerTest, RejectsBadPartyIndex) {
  const auto report = AnalyzeProgram(Prog("PARTYBALANCE 3\nSTOP", 2));
  EXPECT_FALSE(report.valid);
}

TEST(AnalyzerTest, CountsRequiredArgs) {
  const auto report = AnalyzeProgram(Prog("ARG 0\nARG 4\nADD\nSTOP"));
  EXPECT_EQ(report.required_args, 5u);
}

TEST(AnalyzerTest, StandardTemplatesAllValidate) {
  EXPECT_TRUE(ValidateProgram(contracts::UnconditionalTransfer(Addr(1))).ok());
  EXPECT_TRUE(
      ValidateProgram(contracts::ConditionalTransfer(Addr(1), 100)).ok());
  EXPECT_TRUE(ValidateProgram(contracts::Escrow(Addr(1))).ok());
  EXPECT_TRUE(
      ValidateProgram(contracts::Token({Addr(1), Addr(2), Addr(3)})).ok());
  EXPECT_TRUE(ValidateProgram(contracts::Crowdfund(Addr(1), 500)).ok());
}

TEST(AnalyzerTest, DeployCheckedRejectsBrokenCode) {
  StateDB db;
  ContractProgram bad = Prog("POP\nSTOP");
  EXPECT_TRUE(ContractRegistry::DeployChecked(&db, Addr(1), bad)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ContractRegistry::DeployChecked(
                  &db, Addr(1), contracts::Escrow(Addr(2)))
                  .ok());
}

// ------------------------- Token / Crowdfund -----------------------------

TEST(TokenContractTest, BuyMoveRedeem) {
  StateDB db;
  const std::vector<Address> parties{Addr(1), Addr(2)};
  Result<Address> token =
      ContractRegistry::DeployChecked(&db, Addr(9), contracts::Token(parties));
  ASSERT_TRUE(token.ok());
  db.Mint(Addr(5), 1000);

  auto call = [&](std::vector<int64_t> args, Amount value) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = Addr(5);
    tx.recipient = *token;
    tx.value = value;
    tx.payload = Vm::EncodeArgs(args);
    return ContractRegistry::Call(&db, tx);
  };

  // Buy 200 tokens for party 0.
  ASSERT_TRUE(call({0, 0}, 200).ok());
  EXPECT_EQ(db.StorageGet(*token, 0), 200);
  // Move 50 from party 0 to party 1.
  ASSERT_TRUE(call({1, 50, 0, 1}, 0).ok());
  EXPECT_EQ(db.StorageGet(*token, 0), 150);
  EXPECT_EQ(db.StorageGet(*token, 1), 50);
  // Over-move fails.
  EXPECT_FALSE(call({1, 500, 0, 1}, 0).ok());
  // Redeem 30 of party 1's tokens for coins.
  ASSERT_TRUE(call({2, 30, 1}, 0).ok());
  EXPECT_EQ(db.StorageGet(*token, 1), 20);
  EXPECT_EQ(db.BalanceOf(Addr(2)), 30u);
}

TEST(CrowdfundContractTest, ClaimOnlyAfterGoal) {
  StateDB db;
  const Address owner = Addr(7);
  Result<Address> fund = ContractRegistry::DeployChecked(
      &db, Addr(9), contracts::Crowdfund(owner, 300));
  ASSERT_TRUE(fund.ok());
  db.Mint(Addr(5), 1000);

  auto call = [&](std::vector<int64_t> args, Amount value) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = Addr(5);
    tx.recipient = *fund;
    tx.value = value;
    tx.payload = Vm::EncodeArgs(args);
    return ContractRegistry::Call(&db, tx);
  };

  ASSERT_TRUE(call({0}, 150).ok());
  // Goal not reached: claim reverts, pledge stays.
  EXPECT_FALSE(call({1}, 0).ok());
  EXPECT_EQ(db.StorageGet(*fund, 0), 150);
  ASSERT_TRUE(call({0}, 200).ok());
  // Goal reached: owner gets the pot.
  ASSERT_TRUE(call({1}, 0).ok());
  EXPECT_EQ(db.BalanceOf(owner), 350u);
  EXPECT_EQ(db.StorageGet(*fund, 0), 0);
}

// ------------------------- Account proofs --------------------------------

TEST(StateProofTest, ProvesAccountDigest) {
  StateDB db;
  for (uint8_t i = 1; i < 20; ++i) db.Mint(Addr(i), i * 100);
  const Hash256 root = db.StateRoot();
  const auto proof = db.ProveAccount(Addr(5));
  auto verified = StateDB::VerifyAccount(root, Addr(5), proof);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  ASSERT_TRUE(verified->has_value());
  EXPECT_EQ(**verified, db.Find(Addr(5))->Digest(Addr(5)));
}

TEST(StateProofTest, ProvesAbsence) {
  StateDB db;
  db.Mint(Addr(1), 100);
  db.Mint(Addr(2), 100);
  const auto proof = db.ProveAccount(Addr(9));
  auto verified = StateDB::VerifyAccount(db.StateRoot(), Addr(9), proof);
  ASSERT_TRUE(verified.ok());
  EXPECT_FALSE(verified->has_value());
}

TEST(StateProofTest, StaleProofFailsAfterStateChange) {
  StateDB db;
  db.Mint(Addr(1), 100);
  const auto proof = db.ProveAccount(Addr(1));
  db.Mint(Addr(1), 1);  // Root moves.
  EXPECT_FALSE(StateDB::VerifyAccount(db.StateRoot(), Addr(1), proof).ok());
}

// --------------------------- Storage model -------------------------------

TEST(StorageTest, FullReplicationStoresEverythingEverywhere) {
  const std::vector<double> state{100, 50, 50};
  const std::vector<uint64_t> miners{2, 1, 1};
  const auto full = storage::FullReplication(state, miners);
  EXPECT_DOUBLE_EQ(full.per_miner, 200.0);
  EXPECT_DOUBLE_EQ(full.total, 800.0);
}

TEST(StorageTest, ContractShardingOnlyMaxShardPaysFull) {
  const std::vector<double> state{100, 50, 50};
  const std::vector<uint64_t> miners{2, 1, 1};
  const auto ours = storage::ContractSharding(state, miners);
  // 2 MaxShard miners x 200 + 50 + 50.
  EXPECT_DOUBLE_EQ(ours.total, 500.0);
  EXPECT_DOUBLE_EQ(ours.per_miner, 125.0);
  EXPECT_DOUBLE_EQ(ours.max_miner, 200.0);
}

TEST(StorageTest, StateDividedIsLowerBound) {
  const std::vector<double> state{100, 50, 50};
  const std::vector<uint64_t> miners{2, 1, 1};
  const auto divided = storage::StateDivided(state, miners);
  const auto ours = storage::ContractSharding(state, miners);
  EXPECT_LE(divided.total, ours.total);
  EXPECT_DOUBLE_EQ(divided.total, 300.0);
}

TEST(StorageTest, SavingsBelowOneWithContractShards) {
  const std::vector<double> state{100, 80, 80, 80, 80};
  const std::vector<uint64_t> miners{3, 2, 2, 2, 2};
  const double ratio = storage::SavingsVsFullReplication(state, miners);
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.0);
}

// --------------------------- Arrival model -------------------------------

TEST(ArrivalTest, UnderloadedSystemKeepsUp) {
  ArrivalConfig config;
  config.arrival_rate = 0.05;  // 3 tx/min vs capacity 10 tx/min.
  config.duration_seconds = 6000.0;
  Rng rng(11);
  const ArrivalResult r = RunArrivalSim(config, &rng);
  EXPECT_GT(r.confirmed, 0u);
  EXPECT_FALSE(r.Saturated(config));
  EXPECT_LT(r.backlog, 15u);
  EXPECT_GT(r.mean_latency, 0.0);
  EXPECT_GE(r.p95_latency, r.mean_latency);
}

TEST(ArrivalTest, OverloadedSystemBacklogs) {
  ArrivalConfig config;
  config.arrival_rate = 1.0;  // 60 tx/min vs capacity 10 tx/min.
  config.duration_seconds = 6000.0;
  Rng rng(12);
  const ArrivalResult r = RunArrivalSim(config, &rng);
  EXPECT_TRUE(r.Saturated(config));
  EXPECT_GT(r.backlog, 1000u);
}

TEST(ArrivalTest, SelectionGameRaisesCapacity) {
  // Above greedy's hard 10-tx/min ceiling the game confirms more per
  // round (its diversity grows with the queue), so it sustains higher
  // throughput and a smaller backlog than greedy under the same load.
  ArrivalConfig greedy;
  greedy.arrival_rate = 0.3;  // 18 tx/min vs greedy's 10 tx/min ceiling.
  greedy.num_miners = 5;
  greedy.policy = SelectionPolicy::kGreedy;
  greedy.duration_seconds = 6000.0;
  ArrivalConfig game = greedy;
  game.policy = SelectionPolicy::kCongestionGame;
  Rng r1(13);
  Rng r2(14);
  const ArrivalResult g = RunArrivalSim(greedy, &r1);
  const ArrivalResult b = RunArrivalSim(game, &r2);
  EXPECT_TRUE(g.Saturated(greedy));
  EXPECT_GT(b.throughput, 1.2 * g.throughput);
  EXPECT_LT(b.backlog, g.backlog / 2);
  // Greedy's throughput pins at the one-block-per-round ceiling.
  EXPECT_NEAR(g.throughput, 10.0 / 60.0, 0.01);
}

TEST(ArrivalTest, SaturationSearchBrackets) {
  ArrivalConfig config;
  config.duration_seconds = 3000.0;
  Rng rng(15);
  const double rate = FindSaturationRate(config, 0.01, 2.0, 8, &rng);
  // Capacity is 10 txs / 60 s = 0.167 tx/s.
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.5);
}

}  // namespace
}  // namespace shardchain
