// Differential serial-vs-parallel block building (ctest label:
// parallel): Ledger::BuildBlock with a conflict-aware exec pool at
// thread counts {1, 2, 3, 4, 7, 8} must produce byte-identical block
// encodings, state roots, inclusion sets, and retained post-states to
// the strictly serial greedy loop, for ≥20 seeds across four workload
// shapes — uniform transfers, Zipf hot-account traffic from the
// adversarial stream, the all-conflict degenerate case (which must
// degrade to a width-1 schedule), and contract-call mixes with deploys
// and serial barriers. A seeded conflict-schedule fuzz additionally
// asserts the lane coloring invariant and that the modification-log
// merge equals serial replay account-by-account (DESIGN.md §13).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chain/ledger.h"
#include "chain/parallel_exec.h"
#include "common/rng.h"
#include "contract/registry.h"
#include "contract/vm.h"
#include "parallel/thread_pool.h"
#include "sim/workload.h"
#include "types/codec.h"

namespace shardchain {
namespace {

const size_t kThreadCounts[] = {1, 2, 3, 4, 7, 8};
constexpr uint64_t kNumSeeds = 20;

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Transaction Pay(const Address& from, const Address& to, Amount value,
                Amount fee, uint64_t nonce = 0) {
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  tx.sender = from;
  tx.recipient = to;
  tx.value = value;
  tx.fee = fee;
  tx.nonce = nonce;
  return tx;
}

/// One differential cell: a genesis state plus a candidate list.
struct Scenario {
  StateDB genesis;
  std::vector<Transaction> txs;
  ChainConfig config;
};

/// Uniform traffic: distinct senders paying recipients from a small
/// pool, a sprinkling of deliberately invalid candidates (hopeless
/// balances, bad nonces) so inclusion decisions are exercised too.
Scenario UniformScenario(uint64_t seed) {
  Rng rng(seed * 7919 + 1);
  Scenario s;
  s.config.max_txs_per_block = 64;
  std::vector<Address> recipients;
  for (int i = 0; i < 12; ++i) recipients.push_back(RandomAddress(&rng));
  const size_t n = 32 + rng.UniformInt(17);
  for (size_t i = 0; i < n; ++i) {
    const Address sender = RandomAddress(&rng);
    const Address to = recipients[rng.UniformInt(recipients.size())];
    Transaction tx = Pay(sender, to, 1 + rng.UniformInt(50),
                         1 + rng.UniformInt(10));
    if (rng.Bernoulli(0.15)) {
      // Unfundable or mis-nonced: must be skipped identically.
      if (rng.Bernoulli(0.5)) {
        tx.value = 1'000'000'000;
      } else {
        tx.nonce = 5;
      }
    }
    s.genesis.Mint(sender, 200);
    s.txs.push_back(tx);
  }
  return s;
}

/// Zipf hot-account traffic from the adversarial stream, with the
/// stream's contract universe actually deployed (UnconditionalTransfer
/// programs) so the calls execute and conflict on the hot contracts.
Scenario ZipfScenario(uint64_t seed) {
  Scenario s;
  s.config.max_txs_per_block = 64;
  AdversarialWorkloadConfig config;
  config.base.num_transactions = 48;
  config.base.num_contracts = 6;
  config.base.zipf_exponent = 1.2;
  config.flash_period = 1;  // Every epoch is a flash crowd.
  config.flash_crowd_share = 0.5;
  AdversarialWorkloadStream stream(config, seed);
  Workload workload = stream.NextEpoch();
  Rng rng(seed * 104729 + 7);
  for (size_t c = 0; c < workload.contracts.size(); ++c) {
    const Address destination = RandomAddress(&rng);
    const Status deployed = s.genesis.DeployContract(
        workload.contracts[c],
        contracts::UnconditionalTransfer(destination).Serialize());
    EXPECT_TRUE(deployed.ok()) << deployed.ToString();
  }
  FundWorkload(workload.transactions, &s.genesis);
  s.txs = std::move(workload.transactions);
  return s;
}

/// All-conflict: every candidate credits the same hot account, so the
/// schedule must degrade to one transaction per lane.
Scenario AllConflictScenario(uint64_t seed) {
  Rng rng(seed * 31 + 17);
  Scenario s;
  s.config.max_txs_per_block = 32;
  const Address hot = Addr(0xee);
  const size_t n = 16 + rng.UniformInt(9);
  for (size_t i = 0; i < n; ++i) {
    const Address sender = RandomAddress(&rng);
    s.genesis.Mint(sender, 500);
    s.txs.push_back(Pay(sender, hot, 1 + rng.UniformInt(100),
                        1 + rng.UniformInt(5)));
  }
  return s;
}

/// Contract-call mix: the standard templates (escrow, token,
/// crowdfund, conditional transfer), interleaved with transfers,
/// deploys (serial barriers), calls to not-yet-deployed addresses, and
/// repeat-sender sequences whose nonces chain.
Scenario ContractMixScenario(uint64_t seed) {
  Rng rng(seed * 6151 + 3);
  Scenario s;
  s.config.max_txs_per_block = 64;

  const Address owner = Addr(0x01);
  s.genesis.Mint(owner, 10'000);
  std::vector<Address> parties;
  for (int i = 0; i < 4; ++i) {
    parties.push_back(RandomAddress(&rng));
    s.genesis.Mint(parties.back(), 1'000);
  }
  Result<Address> escrow = ContractRegistry::Deploy(
      &s.genesis, owner, contracts::Escrow(parties[0]));
  Result<Address> token =
      ContractRegistry::Deploy(&s.genesis, owner, contracts::Token(parties));
  Result<Address> crowdfund = ContractRegistry::Deploy(
      &s.genesis, owner, contracts::Crowdfund(parties[1], 500));
  Result<Address> conditional = ContractRegistry::Deploy(
      &s.genesis, owner, contracts::ConditionalTransfer(parties[2], 2'000));
  EXPECT_TRUE(escrow.ok() && token.ok() && crowdfund.ok() &&
              conditional.ok());
  const std::vector<Address> targets{*escrow, *token, *crowdfund,
                                     *conditional};

  const size_t n = 28 + rng.UniformInt(13);
  std::map<Address, uint64_t> nonces;
  std::vector<Address> senders;
  for (int i = 0; i < 10; ++i) {
    senders.push_back(RandomAddress(&rng));
    s.genesis.Mint(senders.back(), 5'000);
  }
  for (size_t i = 0; i < n; ++i) {
    const Address sender = senders[rng.UniformInt(senders.size())];
    Transaction tx;
    tx.sender = sender;
    tx.nonce = nonces[sender]++;
    tx.fee = 1 + rng.UniformInt(8);
    const uint32_t shape = static_cast<uint32_t>(rng.UniformInt(10));
    if (shape < 3) {
      tx.kind = TxKind::kDirectTransfer;
      tx.recipient = parties[rng.UniformInt(parties.size())];
      tx.value = 1 + rng.UniformInt(40);
    } else if (shape < 8) {
      tx.kind = TxKind::kContractCall;
      tx.recipient = targets[rng.UniformInt(targets.size())];
      tx.value = 1 + rng.UniformInt(60);
      if (tx.recipient == *escrow) {
        tx.payload = Vm::EncodeArgs({rng.Bernoulli(0.7) ? 0 : 1});
      } else if (tx.recipient == *token) {
        tx.payload = Vm::EncodeArgs(
            {0, static_cast<int64_t>(rng.UniformInt(parties.size()))});
      } else if (tx.recipient == *crowdfund) {
        tx.payload = Vm::EncodeArgs({rng.Bernoulli(0.8) ? 0 : 1});
      }
    } else if (shape == 8) {
      // Deploy: always a serial barrier.
      tx.kind = TxKind::kContractDeploy;
      tx.payload =
          contracts::UnconditionalTransfer(RandomAddress(&rng)).Serialize();
    } else {
      // Call into the void: fails at execution, unresolvable footprint.
      tx.kind = TxKind::kContractCall;
      tx.recipient = RandomAddress(&rng);
      tx.value = 1;
    }
    s.txs.push_back(tx);
  }
  return s;
}

Scenario MakeScenario(int kind, uint64_t seed) {
  switch (kind) {
    case 0:
      return UniformScenario(seed);
    case 1:
      return ZipfScenario(seed);
    case 2:
      return AllConflictScenario(seed);
    default:
      return ContractMixScenario(seed);
  }
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "uniform";
    case 1:
      return "zipf";
    case 2:
      return "all-conflict";
    default:
      return "contract-mix";
  }
}

/// Runs one differential cell: serial reference build vs pool builds at
/// every thread count, asserting bitwise identity of the encoded block,
/// the state root, and the post-append tip state.
void RunDifferentialCell(int kind, uint64_t seed) {
  SCOPED_TRACE(std::string(KindName(kind)) + " seed " + std::to_string(seed));
  const Scenario s = MakeScenario(kind, seed);
  const Address miner = Addr(0x99);

  Ledger serial_ledger(1, s.genesis, s.config);
  Result<Block> serial_built = serial_ledger.BuildBlock(miner, s.txs, 1);
  ASSERT_TRUE(serial_built.ok()) << serial_built.status().ToString();
  const Bytes serial_bytes = codec::EncodeBlock(*serial_built);
  ASSERT_TRUE(serial_ledger.Append(*serial_built).ok());
  const Hash256 serial_tip_root = serial_ledger.tip_state().StateRoot();

  for (const size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    Ledger ledger(1, s.genesis, s.config);
    ledger.SetExecPool(&pool);
    Result<Block> built = ledger.BuildBlock(miner, s.txs, 1);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_EQ(codec::EncodeBlock(*built), serial_bytes)
        << "block bytes diverged at " << threads << " threads";
    EXPECT_EQ(built->header.state_root, serial_built->header.state_root)
        << "state root diverged at " << threads << " threads";
    // The retained post-state must be equivalent too: append the block
    // (consuming the last_built_ cache) and compare the tip.
    ASSERT_TRUE(ledger.Append(*built).ok());
    EXPECT_EQ(ledger.tip_state().StateRoot(), serial_tip_root)
        << "retained post-state diverged at " << threads << " threads";
  }
}

TEST(ParallelExecEquivalence, UniformWorkloadMatchesSerial) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    RunDifferentialCell(0, seed);
  }
}

TEST(ParallelExecEquivalence, ZipfAdversarialWorkloadMatchesSerial) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    RunDifferentialCell(1, seed);
  }
}

TEST(ParallelExecEquivalence, AllConflictWorkloadMatchesSerial) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    RunDifferentialCell(2, seed);
  }
}

TEST(ParallelExecEquivalence, ContractMixWorkloadMatchesSerial) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    RunDifferentialCell(3, seed);
  }
}

TEST(ParallelExecEquivalence, AllConflictDegradesToSerialSchedule) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const Scenario s = AllConflictScenario(seed);
    const Address miner = Addr(0x99);
    std::vector<TxFootprint> footprints;
    for (const Transaction& tx : s.txs) {
      footprints.push_back(DeriveFootprint(tx, s.genesis, miner));
    }
    const LaneSchedule schedule = ScheduleLanes(footprints);
    ASSERT_EQ(schedule.lanes.size(), s.txs.size());
    for (const auto& lane : schedule.lanes) EXPECT_EQ(lane.size(), 1u);
    // Lane order must equal candidate order: full serialization.
    for (size_t i = 0; i < s.txs.size(); ++i) {
      EXPECT_EQ(schedule.lane_of[i], static_cast<uint32_t>(i));
    }
    // The engine reports the degenerate width through its stats.
    std::vector<uint8_t> included;
    ParallelExecStats stats;
    ThreadPool pool(4);
    Result<StateDB> post = ExecuteCandidatesParallel(
        s.genesis, s.txs, miner, s.config, s.config.max_txs_per_block, &pool,
        &included, &stats);
    ASSERT_TRUE(post.ok());
    EXPECT_EQ(stats.max_lane_width, 1u);
  }
}

TEST(ParallelExecEquivalence, BlockCapOverflowMatchesSerial) {
  // More valid candidates than the block holds: the engine must rebuild
  // the post-state without the beyond-cap effects.
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    Scenario s = UniformScenario(seed);
    s.config.max_txs_per_block = 5;
    SCOPED_TRACE("cap-overflow seed " + std::to_string(seed));
    const Address miner = Addr(0x99);
    Ledger serial_ledger(1, s.genesis, s.config);
    Result<Block> serial_built = serial_ledger.BuildBlock(miner, s.txs, 1);
    ASSERT_TRUE(serial_built.ok());
    ASSERT_EQ(serial_built->transactions.size(), 5u);
    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      Ledger ledger(1, s.genesis, s.config);
      ledger.SetExecPool(&pool);
      Result<Block> built = ledger.BuildBlock(miner, s.txs, 1);
      ASSERT_TRUE(built.ok());
      EXPECT_EQ(codec::EncodeBlock(*built), codec::EncodeBlock(*serial_built))
          << "overflow block diverged at " << threads << " threads";
    }
  }
}

// ------------------- conflict-schedule fuzz ------------------------------

/// Random synthetic footprints over a small address universe, so
/// conflicts are dense enough to matter.
std::vector<TxFootprint> FuzzFootprints(Rng* rng) {
  const size_t n = 4 + rng->UniformInt(28);
  std::vector<TxFootprint> fps(n);
  for (TxFootprint& fp : fps) {
    if (rng->Bernoulli(0.08)) continue;  // Unresolvable barrier.
    fp.resolvable = true;
    std::set<Address> writes;
    std::set<Address> reads;
    const size_t w = 1 + rng->UniformInt(3);
    for (size_t i = 0; i < w; ++i) {
      writes.insert(Addr(static_cast<uint8_t>(1 + rng->UniformInt(12))));
    }
    const size_t r = rng->UniformInt(3);
    for (size_t i = 0; i < r; ++i) {
      const Address addr = Addr(static_cast<uint8_t>(1 + rng->UniformInt(12)));
      if (writes.count(addr) == 0) reads.insert(addr);
    }
    fp.writes.assign(writes.begin(), writes.end());
    fp.reads.assign(reads.begin(), reads.end());
  }
  return fps;
}

bool SharesWrittenAccount(const TxFootprint& a, const TxFootprint& b) {
  std::set<Address> a_writes(a.writes.begin(), a.writes.end());
  std::set<Address> b_all(b.writes.begin(), b.writes.end());
  b_all.insert(b.reads.begin(), b.reads.end());
  for (const Address& addr : a_writes) {
    if (b_all.count(addr) > 0) return true;
  }
  std::set<Address> b_writes(b.writes.begin(), b.writes.end());
  for (const Address& addr : a.reads) {
    if (b_writes.count(addr) > 0) return true;
  }
  return false;
}

TEST(ConflictScheduleFuzz, NoLaneCoSchedulesConflictingTransactions) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    const std::vector<TxFootprint> fps = FuzzFootprints(&rng);
    const LaneSchedule schedule = ScheduleLanes(fps);
    ASSERT_EQ(schedule.lane_of.size(), fps.size());
    for (size_t i = 0; i < fps.size(); ++i) {
      for (size_t j = i + 1; j < fps.size(); ++j) {
        // Unresolvable transactions never share a lane with anything.
        if (!fps[i].resolvable || !fps[j].resolvable) {
          EXPECT_NE(schedule.lane_of[i], schedule.lane_of[j])
              << "barrier co-scheduled: seed " << seed << " txs " << i << ","
              << j;
          // And they order the whole stream around themselves.
          if (!fps[i].resolvable) {
            EXPECT_LT(schedule.lane_of[i], schedule.lane_of[j]);
          }
          continue;
        }
        if (SharesWrittenAccount(fps[i], fps[j])) {
          EXPECT_LT(schedule.lane_of[i], schedule.lane_of[j])
              << "conflicting txs co-scheduled or reordered: seed " << seed
              << " txs " << i << "," << j;
        }
      }
    }
  }
}

/// Serial replay reference for the merge fuzz: the exact greedy loop
/// BuildBlock runs without a pool, minus header assembly.
StateDB SerialReplay(const StateDB& genesis,
                     const std::vector<Transaction>& txs, const Address& miner,
                     const ChainConfig& config, size_t max_include,
                     std::vector<uint8_t>* included) {
  StateDB scratch = genesis;
  ChainConfig no_reward = config;
  no_reward.block_reward = 0;
  included->assign(txs.size(), 0);
  size_t count = 0;
  for (size_t i = 0; i < txs.size() && count < max_include; ++i) {
    const size_t trial = scratch.Snapshot();
    const std::vector<Transaction> single{txs[i]};
    if (Ledger::ExecuteTransactions(single, miner, no_reward, &scratch).ok()) {
      EXPECT_TRUE(scratch.Commit(trial).ok());
      (*included)[i] = 1;
      ++count;
    } else {
      EXPECT_TRUE(scratch.RevertTo(trial).ok());
    }
  }
  return scratch;
}

TEST(ConflictScheduleFuzz, ModificationLogMergeEqualsSerialReplay) {
  // Random overlapping transfer workloads; compare the merged engine
  // state to serial replay account-by-account, not just by root.
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("merge fuzz seed " + std::to_string(seed));
    Rng rng(seed * 2654435761u + 9);
    StateDB genesis;
    std::vector<Address> actors;
    for (int i = 0; i < 10; ++i) {
      actors.push_back(Addr(static_cast<uint8_t>(10 + i)));
      if (rng.Bernoulli(0.8)) genesis.Mint(actors.back(), rng.UniformInt(300));
    }
    const Address miner = Addr(0x99);
    std::vector<Transaction> txs;
    std::map<Address, uint64_t> nonces;
    const size_t n = 8 + rng.UniformInt(25);
    for (size_t i = 0; i < n; ++i) {
      const Address from = actors[rng.UniformInt(actors.size())];
      const Address to = actors[rng.UniformInt(actors.size())];
      Transaction tx = Pay(from, to, rng.UniformInt(120),
                           rng.UniformInt(6), nonces[from]);
      // Some candidates carry a stale nonce or go to the miner (an
      // unresolvable footprint) to exercise failures and barriers.
      if (rng.Bernoulli(0.1)) tx.nonce += 1;
      if (rng.Bernoulli(0.1)) tx.recipient = miner;
      txs.push_back(tx);
      nonces[from] = tx.nonce == nonces[from] ? nonces[from] + 1 : nonces[from];
    }
    ChainConfig config;
    const size_t cap = 6 + rng.UniformInt(30);

    std::vector<uint8_t> serial_included;
    const StateDB serial =
        SerialReplay(genesis, txs, miner, config, cap, &serial_included);

    for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr)}) {
      std::vector<uint8_t> included;
      ParallelExecStats stats;
      Result<StateDB> merged = ExecuteCandidatesParallel(
          genesis, txs, miner, config, cap, pool, &included, &stats);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      EXPECT_EQ(included, serial_included);
      // Account-by-account equality, then the authenticated root.
      EXPECT_EQ(merged->Addresses(), serial.Addresses());
      for (const Address& addr : serial.Addresses()) {
        const Account* expect = serial.Find(addr);
        const Account* got = merged->Find(addr);
        ASSERT_NE(got, nullptr) << addr.ToHex();
        EXPECT_EQ(got->balance, expect->balance) << addr.ToHex();
        EXPECT_EQ(got->nonce, expect->nonce) << addr.ToHex();
        EXPECT_EQ(got->storage, expect->storage) << addr.ToHex();
        EXPECT_EQ(got->code, expect->code) << addr.ToHex();
      }
      EXPECT_EQ(merged->StateRoot(), serial.StateRoot());
    }
    ThreadPool pool(4);
    std::vector<uint8_t> included;
    Result<StateDB> merged = ExecuteCandidatesParallel(
        genesis, txs, miner, config, cap, &pool, &included, nullptr);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(included, serial_included);
    EXPECT_EQ(merged->StateRoot(), serial.StateRoot());
  }
}

// ------------------- last_built_ reuse cache -----------------------------

TEST(ParallelExecEquivalence, LastBuiltReuseAfterParallelBuild) {
  // The post-state retained by a parallel build must satisfy an
  // immediate Append (hit path) and leave the tip equal to a serial
  // ledger's tip.
  ThreadPool pool(4);
  const Scenario s = ContractMixScenario(3);
  const Address miner = Addr(0x99);

  Ledger parallel_ledger(1, s.genesis, s.config);
  parallel_ledger.SetExecPool(&pool);
  Result<Block> built = parallel_ledger.BuildBlock(miner, s.txs, 1);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(parallel_ledger.Append(*built).ok());

  Ledger serial_ledger(1, s.genesis, s.config);
  Result<Block> serial_built = serial_ledger.BuildBlock(miner, s.txs, 1);
  ASSERT_TRUE(serial_built.ok());
  ASSERT_TRUE(serial_ledger.Append(*serial_built).ok());

  EXPECT_EQ(parallel_ledger.tip_hash(), serial_ledger.tip_hash());
  EXPECT_EQ(parallel_ledger.tip_state().StateRoot(),
            serial_ledger.tip_state().StateRoot());

  // And the chain keeps extending across reuse: a second block on top.
  Result<Block> next = parallel_ledger.BuildBlock(miner, s.txs, 2);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(parallel_ledger.Append(*next).ok());
  EXPECT_EQ(parallel_ledger.tip_number(), 2u);
}

}  // namespace
}  // namespace shardchain
