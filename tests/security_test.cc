#include <cmath>

#include <gtest/gtest.h>

#include "analysis/security.h"

namespace shardchain {
namespace {

using security::BinomialPmf;
using security::BinomialTail;
using security::FeeProbability;
using security::LogBinomialCoefficient;
using security::MergeCorruption;
using security::MergeCorruptionLimit;
using security::MinShardSizeForSafety;
using security::SelectionCorruption;
using security::SelectionCorruptionLimit;
using security::ShardSafety;
using security::TxCorruption;

TEST(BinomialTest, CoefficientKnownValues) {
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 10)), 1.0, 1e-9);
  EXPECT_EQ(LogBinomialCoefficient(3, 5), -INFINITY);
}

TEST(BinomialTest, PmfSumsToOne) {
  for (double p : {0.25, 0.33, 0.5}) {
    double total = 0.0;
    for (uint64_t k = 0; k <= 40; ++k) total += BinomialPmf(40, k, p);
    EXPECT_NEAR(total, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(BinomialTest, PmfDegenerateProbabilities) {
  EXPECT_EQ(BinomialPmf(10, 0, 0.0), 1.0);
  EXPECT_EQ(BinomialPmf(10, 3, 0.0), 0.0);
  EXPECT_EQ(BinomialPmf(10, 10, 1.0), 1.0);
  EXPECT_EQ(BinomialPmf(10, 9, 1.0), 0.0);
}

TEST(BinomialTest, TailIsMonotoneInThreshold) {
  EXPECT_GE(BinomialTail(30, 10, 0.33), BinomialTail(30, 15, 0.33));
  EXPECT_NEAR(BinomialTail(30, 0, 0.33), 1.0, 1e-12);
}

TEST(ShardSafetyTest, GrowsWithShardSize) {
  // Fig. 1d: "a shard with more miners is harder to be corrupted."
  double prev = 0.0;
  for (uint64_t n : {20u, 40u, 60u, 80u, 100u}) {
    const double s = ShardSafety(n, 0.33);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(ShardSafetyTest, SmallerAdversaryIsSafer) {
  for (uint64_t n : {20u, 50u, 100u}) {
    EXPECT_GT(ShardSafety(n, 0.25), ShardSafety(n, 0.33));
  }
}

TEST(ShardSafetyTest, ThirtyMinersVsThirtyThreePercentIsAlmostSafe) {
  // Fig. 1d caption: "Given a 33% attack in a shard with 30 miners, the
  // probability to corrupt the system is almost 0."
  EXPECT_GT(ShardSafety(30, 0.33), 0.95);
}

TEST(ShardSafetyTest, ZeroMinersIsUnsafe) {
  EXPECT_EQ(ShardSafety(0, 0.25), 0.0);
}

TEST(MergeCorruptionTest, FiniteSumBelowLimit) {
  const double ps = ShardSafety(40, 0.25);
  EXPECT_LT(MergeCorruption(0.25, ps, 5), MergeCorruptionLimit(0.25, ps));
  EXPECT_NEAR(MergeCorruption(0.25, ps, 200), MergeCorruptionLimit(0.25, ps),
              1e-12);
}

TEST(MergeCorruptionTest, PaperMagnitudeReachable) {
  // Sec. IV-D: with a 25% adversary the merge failure probability is
  // 8e-6 — find the shard size that gives that magnitude.
  const uint64_t n = MinShardSizeForSafety(0.25, 1.0 - 6e-6, 200);
  ASSERT_GT(n, 0u);
  const double limit = MergeCorruptionLimit(0.25, ShardSafety(n, 0.25));
  EXPECT_LT(limit, 1e-5);
  EXPECT_GT(limit, 1e-8);
}

TEST(FeeProbabilityTest, MatchesBinomialHalf) {
  EXPECT_NEAR(FeeProbability(100, 200), BinomialPmf(200, 100, 0.5), 1e-15);
  double total = 0.0;
  for (uint64_t t = 0; t <= 200; ++t) total += FeeProbability(t, 200);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TxCorruptionTest, MajorityThreshold) {
  // With 4 miners, corruption needs >= 3 malicious (strictly more than
  // floor(n/2) = 2).
  const double expected = BinomialPmf(4, 3, 0.25) + BinomialPmf(4, 4, 0.25);
  EXPECT_NEAR(TxCorruption(4, 0.25), expected, 1e-12);
  EXPECT_EQ(TxCorruption(0, 0.25), 0.0);
}

TEST(TxCorruptionTest, DecreasesWithMoreValidators) {
  EXPECT_GT(TxCorruption(4, 0.25), TxCorruption(12, 0.25));
  EXPECT_GT(TxCorruption(12, 0.25), TxCorruption(40, 0.25));
}

TEST(SelectionCorruptionTest, FiniteBelowLimit) {
  EXPECT_LE(SelectionCorruption(0.25, 3, 200, 9),
            SelectionCorruptionLimit(0.25, 200, 9));
}

TEST(SelectionCorruptionTest, PaperMagnitudeReachable) {
  // Sec. IV-D: 25% adversary, 200 total fees -> corruption ~7e-7. With
  // enough miners per transaction the limit drops below 1e-6.
  bool found = false;
  for (uint64_t miners = 5; miners <= 150; ++miners) {
    const double p = SelectionCorruptionLimit(0.25, 200, miners);
    if (p < 1e-6 && p > 0.0) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinShardSizeTest, MonotoneBehaviour) {
  const uint64_t n90 = MinShardSizeForSafety(0.25, 0.90, 500);
  const uint64_t n99 = MinShardSizeForSafety(0.25, 0.99, 500);
  ASSERT_GT(n90, 0u);
  ASSERT_GT(n99, 0u);
  EXPECT_LE(n90, n99);
  EXPECT_EQ(MinShardSizeForSafety(0.49, 1.0 - 1e-30, 50), 0u);
}

}  // namespace
}  // namespace shardchain
