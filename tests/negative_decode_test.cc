// Negative-decode coverage for every wire codec: a decoder handed a
// truncated stream (every strict prefix) or a stream with trailing
// garbage must return an error, never a partial or silently-extended
// struct. Partial decodes are the "imprecise processing" failure class
// — two shards disagreeing on where a record ends disagree on
// everything after it.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/epoch.h"
#include "core/merging_game.h"
#include "core/migration.h"
#include "core/selection_game.h"
#include "core/unification.h"
#include "core/unification_codec.h"
#include "state/account.h"
#include "types/address.h"
#include "types/block.h"
#include "types/codec.h"
#include "types/transaction.h"

namespace shardchain {
namespace {

using namespace shardchain::codec;  // NOLINT: exercise the public codecs.

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Hash256 FilledHash(uint8_t tag) {
  Hash256 h;
  h.bytes.fill(tag);
  return h;
}

// Every strict prefix must fail, and one extra byte after a valid
// encoding must fail. `decode` adapts each codec's Result<T> to a
// pass/fail signal.
template <typename DecodeFn>
void ExpectRejectsMutilatedStreams(const std::string& what,
                                   const Bytes& encoded, DecodeFn decode) {
  ASSERT_FALSE(encoded.empty()) << what;
  ASSERT_TRUE(decode(encoded)) << what << ": valid encoding must decode";
  for (size_t len = 0; len < encoded.size(); ++len) {
    const Bytes truncated(encoded.begin(), encoded.begin() + len);
    EXPECT_FALSE(decode(truncated))
        << what << ": truncation to " << len << " of " << encoded.size()
        << " bytes must fail";
  }
  Bytes trailing = encoded;
  trailing.push_back(0x5a);
  EXPECT_FALSE(decode(trailing)) << what << ": trailing garbage must fail";
}

Transaction SampleTx() {
  Transaction tx;
  tx.sender = Addr(1);
  tx.recipient = Addr(2);
  tx.kind = TxKind::kContractCall;
  tx.value = 1000;
  tx.fee = 7;
  tx.gas_limit = 30000;
  tx.nonce = 5;
  tx.payload = {0xde, 0xad};
  tx.input_accounts = {Addr(3)};
  return tx;
}

BlockHeader SampleHeader() {
  BlockHeader h;
  h.parent_hash = FilledHash(0x11);
  h.number = 42;
  h.shard_id = 3;
  h.miner = Addr(9);
  h.tx_root = FilledHash(0x22);
  h.state_root = FilledHash(0x33);
  h.difficulty = 1000;
  h.nonce = 77;
  h.timestamp = 123456;
  return h;
}

TEST(NegativeDecodeTest, Transaction) {
  ExpectRejectsMutilatedStreams(
      "Transaction", EncodeTransaction(SampleTx()),
      [](const Bytes& b) { return DecodeTransaction(b).ok(); });
}

TEST(NegativeDecodeTest, Header) {
  ExpectRejectsMutilatedStreams(
      "BlockHeader", EncodeHeader(SampleHeader()),
      [](const Bytes& b) { return DecodeHeader(b).ok(); });
}

TEST(NegativeDecodeTest, Block) {
  Block block;
  block.header = SampleHeader();
  block.transactions = {SampleTx()};
  ExpectRejectsMutilatedStreams(
      "Block", EncodeBlock(block),
      [](const Bytes& b) { return DecodeBlock(b).ok(); });
}

TEST(NegativeDecodeTest, UnifiedParameters) {
  UnifiedParameters params;
  params.randomness = FilledHash(0x44);
  params.shard_sizes = {120, 80, 40};
  params.tx_fees = {5, 3, 2, 1};
  params.num_miners = 7;
  ExpectRejectsMutilatedStreams(
      "UnifiedParameters", EncodeUnifiedParameters(params),
      [](const Bytes& b) { return DecodeUnifiedParameters(b).ok(); });
}

TEST(NegativeDecodeTest, SelectionPlan) {
  SelectionResult plan;
  plan.assignment = {{0, 2}, {1}};
  plan.improvement_moves = 3;
  plan.converged = true;
  ExpectRejectsMutilatedStreams(
      "SelectionResult", EncodeSelectionPlan(plan),
      [](const Bytes& b) { return DecodeSelectionPlan(b).ok(); });
}

TEST(NegativeDecodeTest, MergePlan) {
  IterativeMergeResult plan;
  plan.new_shards = {{0, 1}, {2, 3}};
  plan.leftover = {4};
  plan.total_slots = 6;
  ExpectRejectsMutilatedStreams(
      "IterativeMergeResult", EncodeMergePlan(plan),
      [](const Bytes& b) { return DecodeMergePlan(b).ok(); });
}

TEST(NegativeDecodeTest, EpochRecord) {
  EpochRecord record;
  record.number = 9;
  record.seed = FilledHash(0x55);
  record.randomness = FilledHash(0x66);
  record.leader_index = 2;
  record.view = 1;
  record.fallback = false;
  record.fractions = {0.5, 0.25, 0.25};
  ExpectRejectsMutilatedStreams(
      "EpochRecord", EncodeEpochRecord(record),
      [](const Bytes& b) { return DecodeEpochRecord(b).ok(); });
}

Account SampleAccount() {
  Account account;
  account.balance = 5000;
  account.nonce = 3;
  account.code = {0x01, 0x02};
  account.storage[{0x01}] = {0xff};
  return account;
}

TEST(NegativeDecodeTest, AccountState) {
  ExpectRejectsMutilatedStreams(
      "Account", EncodeAccountState(SampleAccount()),
      [](const Bytes& b) { return DecodeAccountState(b).ok(); });
}

TEST(NegativeDecodeTest, HandoffRecord) {
  HandoffRecord record;
  record.addr = Addr(7);
  record.source = 1;
  record.dest = 2;
  record.source_root = FilledHash(0x77);
  record.account = SampleAccount();
  record.proof.push_back({Bytes{0x10, 0x20}});
  ExpectRejectsMutilatedStreams(
      "HandoffRecord", EncodeHandoffRecord(record),
      [](const Bytes& b) { return DecodeHandoffRecord(b).ok(); });
}

TEST(NegativeDecodeTest, MigrationPlan) {
  HandoffRecord record;
  record.addr = Addr(7);
  record.source = 1;
  record.dest = 2;
  record.source_root = FilledHash(0x77);
  record.account = SampleAccount();
  MigrationPlan plan;
  plan.epoch = 4;
  plan.handoffs = {record};
  ExpectRejectsMutilatedStreams(
      "MigrationPlan", EncodeMigrationPlan(plan),
      [](const Bytes& b) { return DecodeMigrationPlan(b).ok(); });
}

}  // namespace
}  // namespace shardchain
