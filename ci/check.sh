#!/usr/bin/env bash
# Tier-1 gate: the full build/test matrix a change must pass before
# merging.
#
#   1. Release build with -Werror, full ctest (includes the detlint
#      static scan of the consensus-critical directories).
#   2. Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
#      full ctest (exercises the determinism harness under sanitizers).
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build-ci)

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_matrix_leg() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== test $dir ===="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "==== chaos $dir ===="
  # The seeded chaos suite runs as its own leg so a liveness split is
  # reported separately from unit regressions. Seeds are fixed inside
  # the suite; reruns are byte-reproducible.
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L chaos
}

run_matrix_leg "$prefix-release" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSHARDCHAIN_WERROR=ON

run_matrix_leg "$prefix-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  "-DSHARDCHAIN_SANITIZE=address;undefined"

# Standalone determinism lint run with the machine-readable report, so
# CI artifacts include the findings even on success.
echo "==== detlint report ===="
"$prefix-release/tools/detlint" --root . \
  --report "$prefix-release/detlint_report.json" \
  src/core src/consensus src/crypto src/types src/contract \
  src/net src/sim
echo "report: $prefix-release/detlint_report.json"

echo "All checks passed."
