#!/usr/bin/env bash
# Tier-1 gate: the full build/test matrix a change must pass before
# merging.
#
#   1. Release build with -Werror, full ctest (includes the detlint and
#      parlint static scans), then a blocking lint step that re-runs
#      both linters with --check-waivers and writes JSON reports into
#      <dir>/lint-reports/.
#   2. Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
#      full ctest (exercises the determinism harness under sanitizers)
#      plus the same blocking lint step.
#   3. Debug build with ThreadSanitizer running the parallel-equivalence
#      and chaos suites — the legs that actually spin up the
#      deterministic thread pool (DESIGN.md §9).
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build-ci)

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

# Directories detlint covers: everything consensus-critical plus the
# benches, examples, and the lint tools themselves (self-scan).
detlint_targets=(src/core src/consensus src/crypto src/types src/contract
                 src/net src/sim src/parallel src/state src/chain src/txpool
                 bench examples tools)

# Blocking lint step: both linters over their scan sets, stale-waiver
# checking on, machine-readable reports under <dir>/lint-reports/ so CI
# can upload them as artifacts even on success. Exit code 2 on any
# unsuppressed finding fails the leg (set -e).
run_lint_step() {
  local dir="$1"
  mkdir -p "$dir/lint-reports"
  echo "==== lint $dir (detlint) ===="
  "$dir/tools/detlint" --root . --check-waivers \
    --report "$dir/lint-reports/detlint.json" \
    "${detlint_targets[@]}"
  echo "==== lint $dir (parlint) ===="
  "$dir/tools/parlint" --root . --check-waivers \
    --report "$dir/lint-reports/parlint.json" \
    src
  echo "artifacts: $dir/lint-reports/detlint.json $dir/lint-reports/parlint.json"
}

run_matrix_leg() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== test $dir ===="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "==== chaos $dir ===="
  # The seeded chaos suite runs as its own leg so a liveness split is
  # reported separately from unit regressions. Seeds are fixed inside
  # the suite; reruns are byte-reproducible.
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L chaos
  run_lint_step "$dir"
}

run_matrix_leg "$prefix-release" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSHARDCHAIN_WERROR=ON

run_matrix_leg "$prefix-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  "-DSHARDCHAIN_SANITIZE=address;undefined"

# TSan leg: ThreadSanitizer cannot combine with ASan, so it gets its
# own build running only the suites that exercise real threads — the
# parallel-equivalence/thread-pool binary and the chaos schedules.
echo "==== configure $prefix-tsan (thread sanitizer) ===="
cmake -B "$prefix-tsan" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSHARDCHAIN_SANITIZE=thread
echo "==== build $prefix-tsan ===="
cmake --build "$prefix-tsan" -j "$jobs" \
  --target shardchain_parallel_tests shardchain_chaos_tests
echo "==== test $prefix-tsan (labels: parallel|chaos) ===="
ctest --test-dir "$prefix-tsan" --output-on-failure -j "$jobs" \
  -L "parallel|chaos"

# State-commitment scaling bench. Runs in the release leg and doubles
# as a correctness gate: it aborts unless the incremental root is
# byte-identical to a from-scratch rebuild at every checkpoint
# (DESIGN.md §10). Artifact: BENCH_state.json.
echo "==== bench_state_scaling (root identity gate) ===="
(cd "$prefix-release" && ./bench/bench_state_scaling)
echo "artifact: $prefix-release/BENCH_state.json"

echo "All checks passed."
