#!/usr/bin/env bash
# Tier-1 gate: the full build/test matrix a change must pass before
# merging.
#
#   1. Release build with -Werror, full ctest (includes the detlint,
#      parlint, flowlint, and codeclint static scans), then a blocking
#      lint step that re-runs all four linters with --check-waivers and
#      writes JSON + SARIF reports into <dir>/lint-reports/.
#   2. Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
#      full ctest (exercises the determinism harness under sanitizers)
#      plus the same blocking lint step.
#   3. Debug build with ThreadSanitizer running the parallel-equivalence
#      and chaos suites — the legs that actually spin up the
#      deterministic thread pool (DESIGN.md §9).
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build-ci)

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

# Directories detlint covers: everything consensus-critical plus the
# benches, examples, and the lint tools themselves (self-scan).
detlint_targets=(src/core src/consensus src/crypto src/types src/contract
                 src/net src/sim src/parallel src/state src/chain src/txpool
                 bench examples tools)

# Blocking lint step: all four linters over their scan sets,
# stale-waiver checking on, machine-readable JSON + SARIF reports under
# <dir>/lint-reports/ so CI can upload them as artifacts (and feed the
# SARIF to code-scanning UIs) even on success. Exit code 2 on any
# unsuppressed finding fails the leg (set -e). flowlint additionally
# diffs its computed taint summaries against the checked-in
# tools/flowlint/summaries.json (rule taint-summary-drift), and
# codeclint its per-record member manifests against
# tools/codeclint/fields.json (rule field-manifest-drift).
run_lint_step() {
  local dir="$1"
  mkdir -p "$dir/lint-reports"
  echo "==== lint $dir (detlint) ===="
  "$dir/tools/detlint" --root . --check-waivers \
    --report "$dir/lint-reports/detlint.json" \
    --sarif "$dir/lint-reports/detlint.sarif" \
    "${detlint_targets[@]}"
  echo "==== lint $dir (parlint) ===="
  "$dir/tools/parlint" --root . --check-waivers \
    --report "$dir/lint-reports/parlint.json" \
    --sarif "$dir/lint-reports/parlint.sarif" \
    src
  echo "==== lint $dir (flowlint) ===="
  "$dir/tools/flowlint" --root . --check-waivers \
    --summaries tools/flowlint/summaries.json \
    --report "$dir/lint-reports/flowlint.json" \
    --sarif "$dir/lint-reports/flowlint.sarif" \
    src
  echo "==== lint $dir (codeclint) ===="
  "$dir/tools/codeclint" --root . --check-waivers \
    --manifest tools/codeclint/fields.json \
    --report "$dir/lint-reports/codeclint.json" \
    --sarif "$dir/lint-reports/codeclint.sarif" \
    src
  echo "artifacts: $dir/lint-reports/{detlint,parlint,flowlint,codeclint}.{json,sarif}"
}

# Aggregated lint summary: per-tool finding counts, stale-waiver
# counts, and taint-summary + field-manifest drift status, read back
# from the JSON reports of one leg. Pure-python JSON parse — no extra
# dependencies.
print_lint_summary() {
  local dir="$1"
  echo "==== lint summary ($dir/lint-reports) ===="
  python3 - "$dir/lint-reports" <<'EOF'
import json, os, sys
reports = sys.argv[1]
taint_drift = "in sync"
manifest_drift = "in sync"
rows = []
for tool in ("detlint", "parlint", "flowlint", "codeclint"):
    path = os.path.join(reports, tool + ".json")
    with open(path) as f:
        report = json.load(f)
    findings = report["findings"]
    stale = sum(1 for f in findings if f["rule"] == "stale-waiver")
    if any(f["rule"] == "taint-summary-drift" for f in findings):
        taint_drift = "DRIFT"
    if any(f["rule"] == "field-manifest-drift" for f in findings):
        manifest_drift = "DRIFT"
    rows.append((tool, report["files_scanned"], len(findings),
                 report["unsuppressed"], stale))
print(f"  {'tool':<10}{'files':>7}{'findings':>10}{'unsuppressed':>14}"
      f"{'stale-waivers':>15}")
for tool, files, total, unsup, stale in rows:
    print(f"  {tool:<10}{files:>7}{total:>10}{unsup:>14}{stale:>15}")
print(f"  taint summaries ({'tools/flowlint/summaries.json'}): "
      f"{taint_drift}")
print(f"  field manifests ({'tools/codeclint/fields.json'}): "
      f"{manifest_drift}")
EOF
}

run_matrix_leg() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== test $dir ===="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "==== chaos $dir ===="
  # The seeded chaos suite runs as its own leg so a liveness split is
  # reported separately from unit regressions. Seeds are fixed inside
  # the suite; reruns are byte-reproducible.
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L chaos
  run_lint_step "$dir"
}

run_matrix_leg "$prefix-release" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSHARDCHAIN_WERROR=ON

run_matrix_leg "$prefix-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  "-DSHARDCHAIN_SANITIZE=address;undefined"

# TSan leg: ThreadSanitizer cannot combine with ASan, so it gets its
# own build running only the suites that exercise real threads — the
# parallel-equivalence/thread-pool binary and the chaos schedules.
echo "==== configure $prefix-tsan (thread sanitizer) ===="
cmake -B "$prefix-tsan" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSHARDCHAIN_SANITIZE=thread
echo "==== build $prefix-tsan ===="
cmake --build "$prefix-tsan" -j "$jobs" \
  --target shardchain_parallel_tests shardchain_chaos_tests
echo "==== test $prefix-tsan (labels: parallel|chaos) ===="
ctest --test-dir "$prefix-tsan" --output-on-failure -j "$jobs" \
  -L "parallel|chaos"

# State-commitment scaling bench. Runs in the release leg and doubles
# as a correctness gate: it aborts unless the incremental root is
# byte-identical to a from-scratch rebuild at every checkpoint
# (DESIGN.md §10). Artifact: BENCH_state.json.
echo "==== bench_state_scaling (root identity gate) ===="
(cd "$prefix-release" && ./bench/bench_state_scaling)
echo "artifact: $prefix-release/BENCH_state.json"

# Churn recovery bench. Also a correctness gate: it aborts unless every
# accepted cross-shard migration re-verifies against its source shard
# root (DESIGN.md §12). Artifact: BENCH_churn.json.
echo "==== bench_churn_recovery (handoff verification gate) ===="
(cd "$prefix-release" && ./bench/bench_churn_recovery)
echo "artifact: $prefix-release/BENCH_churn.json"

# Parallel in-block execution bench. Also a correctness gate: it aborts
# unless the lane-scheduled parallel build is byte-identical to the
# serial build in every (conflict density, threads) cell (DESIGN.md
# §13). Speedup > 1x needs multi-core hardware; the JSON records
# hardware_concurrency. Artifact: BENCH_exec.json.
echo "==== bench_exec_parallel (serial/parallel identity gate) ===="
(cd "$prefix-release" && ./bench/bench_exec_parallel)
echo "artifact: $prefix-release/BENCH_exec.json"

# Million-tx mempool/pipeline bench. Also a correctness gate: it aborts
# unless the pipelined drain is byte-identical to the serial mine loop
# at every commit-queue depth — blocks, state root, residual pool —
# asserted pre-timing at gate scale and re-checked over the full
# 1M-transaction backlog (DESIGN.md §14). Artifact: BENCH_pipeline.json.
echo "==== bench_pipeline (pipelined/serial identity gate) ===="
(cd "$prefix-release" && ./bench/bench_pipeline)
echo "artifact: $prefix-release/BENCH_pipeline.json"

print_lint_summary "$prefix-release"

echo "All checks passed."
