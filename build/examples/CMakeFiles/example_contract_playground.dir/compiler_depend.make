# Empty compiler generated dependencies file for example_contract_playground.
# This may be replaced when dependencies are built.
