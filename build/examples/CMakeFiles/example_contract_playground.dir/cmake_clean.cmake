file(REMOVE_RECURSE
  "CMakeFiles/example_contract_playground.dir/contract_playground.cpp.o"
  "CMakeFiles/example_contract_playground.dir/contract_playground.cpp.o.d"
  "example_contract_playground"
  "example_contract_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_contract_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
