# Empty compiler generated dependencies file for example_marketplace.
# This may be replaced when dependencies are built.
