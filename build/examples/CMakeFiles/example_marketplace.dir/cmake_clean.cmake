file(REMOVE_RECURSE
  "CMakeFiles/example_marketplace.dir/marketplace.cpp.o"
  "CMakeFiles/example_marketplace.dir/marketplace.cpp.o.d"
  "example_marketplace"
  "example_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
