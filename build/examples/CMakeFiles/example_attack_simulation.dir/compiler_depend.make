# Empty compiler generated dependencies file for example_attack_simulation.
# This may be replaced when dependencies are built.
