file(REMOVE_RECURSE
  "CMakeFiles/example_attack_simulation.dir/attack_simulation.cpp.o"
  "CMakeFiles/example_attack_simulation.dir/attack_simulation.cpp.o.d"
  "example_attack_simulation"
  "example_attack_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attack_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
