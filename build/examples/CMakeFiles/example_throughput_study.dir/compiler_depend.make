# Empty compiler generated dependencies file for example_throughput_study.
# This may be replaced when dependencies are built.
