file(REMOVE_RECURSE
  "CMakeFiles/example_throughput_study.dir/throughput_study.cpp.o"
  "CMakeFiles/example_throughput_study.dir/throughput_study.cpp.o.d"
  "example_throughput_study"
  "example_throughput_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_throughput_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
