file(REMOVE_RECURSE
  "CMakeFiles/bench_secIVd_security.dir/bench_secIVd_security.cc.o"
  "CMakeFiles/bench_secIVd_security.dir/bench_secIVd_security.cc.o.d"
  "bench_secIVd_security"
  "bench_secIVd_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secIVd_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
