# Empty dependencies file for bench_fig4a_chainspace.
# This may be replaced when dependencies are built.
