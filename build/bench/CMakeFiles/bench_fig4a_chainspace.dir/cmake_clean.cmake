file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_chainspace.dir/bench_fig4a_chainspace.cc.o"
  "CMakeFiles/bench_fig4a_chainspace.dir/bench_fig4a_chainspace.cc.o.d"
  "bench_fig4a_chainspace"
  "bench_fig4a_chainspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_chainspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
