file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_callgraph.dir/bench_ext_callgraph.cc.o"
  "CMakeFiles/bench_ext_callgraph.dir/bench_ext_callgraph.cc.o.d"
  "bench_ext_callgraph"
  "bench_ext_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
