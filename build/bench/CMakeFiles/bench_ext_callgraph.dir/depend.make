# Empty dependencies file for bench_ext_callgraph.
# This may be replaced when dependencies are built.
