# Empty dependencies file for bench_fig5a_merge_scale.
# This may be replaced when dependencies are built.
