file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1d_safety.dir/bench_fig1d_safety.cc.o"
  "CMakeFiles/bench_fig1d_safety.dir/bench_fig1d_safety.cc.o.d"
  "bench_fig1d_safety"
  "bench_fig1d_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1d_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
