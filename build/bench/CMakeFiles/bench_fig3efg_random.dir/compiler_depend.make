# Empty compiler generated dependencies file for bench_fig3efg_random.
# This may be replaced when dependencies are built.
