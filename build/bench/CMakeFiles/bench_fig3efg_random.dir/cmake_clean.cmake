file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3efg_random.dir/bench_fig3efg_random.cc.o"
  "CMakeFiles/bench_fig3efg_random.dir/bench_fig3efg_random.cc.o.d"
  "bench_fig3efg_random"
  "bench_fig3efg_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3efg_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
