# Empty dependencies file for bench_fig3h_selection.
# This may be replaced when dependencies are built.
