file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_miners.dir/bench_table1_miners.cc.o"
  "CMakeFiles/bench_table1_miners.dir/bench_table1_miners.cc.o.d"
  "bench_table1_miners"
  "bench_table1_miners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_miners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
