# Empty dependencies file for bench_table1_miners.
# This may be replaced when dependencies are built.
