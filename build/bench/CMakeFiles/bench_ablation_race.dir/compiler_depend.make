# Empty compiler generated dependencies file for bench_ablation_race.
# This may be replaced when dependencies are built.
