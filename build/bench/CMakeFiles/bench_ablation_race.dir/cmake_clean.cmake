file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_race.dir/bench_ablation_race.cc.o"
  "CMakeFiles/bench_ablation_race.dir/bench_ablation_race.cc.o.d"
  "bench_ablation_race"
  "bench_ablation_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
