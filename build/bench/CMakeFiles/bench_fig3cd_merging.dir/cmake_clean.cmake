file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3cd_merging.dir/bench_fig3cd_merging.cc.o"
  "CMakeFiles/bench_fig3cd_merging.dir/bench_fig3cd_merging.cc.o.d"
  "bench_fig3cd_merging"
  "bench_fig3cd_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3cd_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
