# Empty compiler generated dependencies file for bench_fig3cd_merging.
# This may be replaced when dependencies are built.
