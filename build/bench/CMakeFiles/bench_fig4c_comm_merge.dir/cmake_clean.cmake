file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_comm_merge.dir/bench_fig4c_comm_merge.cc.o"
  "CMakeFiles/bench_fig4c_comm_merge.dir/bench_fig4c_comm_merge.cc.o.d"
  "bench_fig4c_comm_merge"
  "bench_fig4c_comm_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_comm_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
