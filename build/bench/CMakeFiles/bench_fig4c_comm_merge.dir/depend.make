# Empty dependencies file for bench_fig4c_comm_merge.
# This may be replaced when dependencies are built.
