file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3ab_sharding.dir/bench_fig3ab_sharding.cc.o"
  "CMakeFiles/bench_fig3ab_sharding.dir/bench_fig3ab_sharding.cc.o.d"
  "bench_fig3ab_sharding"
  "bench_fig3ab_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3ab_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
