# Empty compiler generated dependencies file for bench_fig3ab_sharding.
# This may be replaced when dependencies are built.
