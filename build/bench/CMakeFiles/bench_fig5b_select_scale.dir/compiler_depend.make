# Empty compiler generated dependencies file for bench_fig5b_select_scale.
# This may be replaced when dependencies are built.
