file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_select_scale.dir/bench_fig5b_select_scale.cc.o"
  "CMakeFiles/bench_fig5b_select_scale.dir/bench_fig5b_select_scale.cc.o.d"
  "bench_fig5b_select_scale"
  "bench_fig5b_select_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_select_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
