file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_comm.dir/bench_fig4b_comm.cc.o"
  "CMakeFiles/bench_fig4b_comm.dir/bench_fig4b_comm.cc.o.d"
  "bench_fig4b_comm"
  "bench_fig4b_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
