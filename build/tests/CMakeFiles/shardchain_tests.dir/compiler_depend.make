# Empty compiler generated dependencies file for shardchain_tests.
# This may be replaced when dependencies are built.
