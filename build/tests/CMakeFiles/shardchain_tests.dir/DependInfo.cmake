
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assignment_unification_test.cc" "tests/CMakeFiles/shardchain_tests.dir/assignment_unification_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/assignment_unification_test.cc.o.d"
  "/root/repo/tests/beacon_test.cc" "tests/CMakeFiles/shardchain_tests.dir/beacon_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/beacon_test.cc.o.d"
  "/root/repo/tests/callgraph_test.cc" "tests/CMakeFiles/shardchain_tests.dir/callgraph_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/callgraph_test.cc.o.d"
  "/root/repo/tests/codec_epoch_test.cc" "tests/CMakeFiles/shardchain_tests.dir/codec_epoch_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/codec_epoch_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/shardchain_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/shardchain_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/shardchain_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/gossip_test.cc" "tests/CMakeFiles/shardchain_tests.dir/gossip_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/gossip_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/shardchain_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/ledger_test.cc" "tests/CMakeFiles/shardchain_tests.dir/ledger_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/ledger_test.cc.o.d"
  "/root/repo/tests/merging_game_test.cc" "tests/CMakeFiles/shardchain_tests.dir/merging_game_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/merging_game_test.cc.o.d"
  "/root/repo/tests/mining_sim_test.cc" "tests/CMakeFiles/shardchain_tests.dir/mining_sim_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/mining_sim_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/shardchain_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/security_test.cc" "tests/CMakeFiles/shardchain_tests.dir/security_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/security_test.cc.o.d"
  "/root/repo/tests/selection_game_test.cc" "tests/CMakeFiles/shardchain_tests.dir/selection_game_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/selection_game_test.cc.o.d"
  "/root/repo/tests/sharding_system_test.cc" "tests/CMakeFiles/shardchain_tests.dir/sharding_system_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/sharding_system_test.cc.o.d"
  "/root/repo/tests/sim_net_test.cc" "tests/CMakeFiles/shardchain_tests.dir/sim_net_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/sim_net_test.cc.o.d"
  "/root/repo/tests/snapshot_naive_test.cc" "tests/CMakeFiles/shardchain_tests.dir/snapshot_naive_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/snapshot_naive_test.cc.o.d"
  "/root/repo/tests/throughput_model_test.cc" "tests/CMakeFiles/shardchain_tests.dir/throughput_model_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/throughput_model_test.cc.o.d"
  "/root/repo/tests/trie_test.cc" "tests/CMakeFiles/shardchain_tests.dir/trie_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/trie_test.cc.o.d"
  "/root/repo/tests/types_state_test.cc" "tests/CMakeFiles/shardchain_tests.dir/types_state_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/types_state_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/shardchain_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/shardchain_tests.dir/vm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shardchain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
