# Empty dependencies file for shardchain.
# This may be replaced when dependencies are built.
