
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/security.cc" "src/CMakeFiles/shardchain.dir/analysis/security.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/analysis/security.cc.o.d"
  "/root/repo/src/analysis/storage.cc" "src/CMakeFiles/shardchain.dir/analysis/storage.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/analysis/storage.cc.o.d"
  "/root/repo/src/analysis/throughput_model.cc" "src/CMakeFiles/shardchain.dir/analysis/throughput_model.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/analysis/throughput_model.cc.o.d"
  "/root/repo/src/baseline/chainspace.cc" "src/CMakeFiles/shardchain.dir/baseline/chainspace.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/baseline/chainspace.cc.o.d"
  "/root/repo/src/baseline/ethereum.cc" "src/CMakeFiles/shardchain.dir/baseline/ethereum.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/baseline/ethereum.cc.o.d"
  "/root/repo/src/chain/ledger.cc" "src/CMakeFiles/shardchain.dir/chain/ledger.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/chain/ledger.cc.o.d"
  "/root/repo/src/chain/snapshot.cc" "src/CMakeFiles/shardchain.dir/chain/snapshot.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/chain/snapshot.cc.o.d"
  "/root/repo/src/common/hex.cc" "src/CMakeFiles/shardchain.dir/common/hex.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/common/hex.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/shardchain.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/shardchain.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/shardchain.dir/common/status.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/common/status.cc.o.d"
  "/root/repo/src/consensus/difficulty.cc" "src/CMakeFiles/shardchain.dir/consensus/difficulty.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/consensus/difficulty.cc.o.d"
  "/root/repo/src/consensus/pow.cc" "src/CMakeFiles/shardchain.dir/consensus/pow.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/consensus/pow.cc.o.d"
  "/root/repo/src/contract/analyzer.cc" "src/CMakeFiles/shardchain.dir/contract/analyzer.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/contract/analyzer.cc.o.d"
  "/root/repo/src/contract/assembler.cc" "src/CMakeFiles/shardchain.dir/contract/assembler.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/contract/assembler.cc.o.d"
  "/root/repo/src/contract/callgraph.cc" "src/CMakeFiles/shardchain.dir/contract/callgraph.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/contract/callgraph.cc.o.d"
  "/root/repo/src/contract/naive_classifier.cc" "src/CMakeFiles/shardchain.dir/contract/naive_classifier.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/contract/naive_classifier.cc.o.d"
  "/root/repo/src/contract/registry.cc" "src/CMakeFiles/shardchain.dir/contract/registry.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/contract/registry.cc.o.d"
  "/root/repo/src/contract/vm.cc" "src/CMakeFiles/shardchain.dir/contract/vm.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/contract/vm.cc.o.d"
  "/root/repo/src/core/beacon.cc" "src/CMakeFiles/shardchain.dir/core/beacon.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/beacon.cc.o.d"
  "/root/repo/src/core/epoch.cc" "src/CMakeFiles/shardchain.dir/core/epoch.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/epoch.cc.o.d"
  "/root/repo/src/core/merging_game.cc" "src/CMakeFiles/shardchain.dir/core/merging_game.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/merging_game.cc.o.d"
  "/root/repo/src/core/miner_assignment.cc" "src/CMakeFiles/shardchain.dir/core/miner_assignment.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/miner_assignment.cc.o.d"
  "/root/repo/src/core/selection_game.cc" "src/CMakeFiles/shardchain.dir/core/selection_game.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/selection_game.cc.o.d"
  "/root/repo/src/core/shard_formation.cc" "src/CMakeFiles/shardchain.dir/core/shard_formation.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/shard_formation.cc.o.d"
  "/root/repo/src/core/sharding_system.cc" "src/CMakeFiles/shardchain.dir/core/sharding_system.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/sharding_system.cc.o.d"
  "/root/repo/src/core/unification.cc" "src/CMakeFiles/shardchain.dir/core/unification.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/core/unification.cc.o.d"
  "/root/repo/src/crypto/keys.cc" "src/CMakeFiles/shardchain.dir/crypto/keys.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/crypto/keys.cc.o.d"
  "/root/repo/src/crypto/merkle.cc" "src/CMakeFiles/shardchain.dir/crypto/merkle.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/crypto/merkle.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/shardchain.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/vrf.cc" "src/CMakeFiles/shardchain.dir/crypto/vrf.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/crypto/vrf.cc.o.d"
  "/root/repo/src/net/gossip.cc" "src/CMakeFiles/shardchain.dir/net/gossip.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/net/gossip.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/shardchain.dir/net/network.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/net/network.cc.o.d"
  "/root/repo/src/sim/arrival.cc" "src/CMakeFiles/shardchain.dir/sim/arrival.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/sim/arrival.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/shardchain.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/mining_sim.cc" "src/CMakeFiles/shardchain.dir/sim/mining_sim.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/sim/mining_sim.cc.o.d"
  "/root/repo/src/sim/pow_race.cc" "src/CMakeFiles/shardchain.dir/sim/pow_race.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/sim/pow_race.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/CMakeFiles/shardchain.dir/sim/workload.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/sim/workload.cc.o.d"
  "/root/repo/src/state/statedb.cc" "src/CMakeFiles/shardchain.dir/state/statedb.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/state/statedb.cc.o.d"
  "/root/repo/src/state/trie.cc" "src/CMakeFiles/shardchain.dir/state/trie.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/state/trie.cc.o.d"
  "/root/repo/src/txpool/txpool.cc" "src/CMakeFiles/shardchain.dir/txpool/txpool.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/txpool/txpool.cc.o.d"
  "/root/repo/src/types/block.cc" "src/CMakeFiles/shardchain.dir/types/block.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/types/block.cc.o.d"
  "/root/repo/src/types/codec.cc" "src/CMakeFiles/shardchain.dir/types/codec.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/types/codec.cc.o.d"
  "/root/repo/src/types/transaction.cc" "src/CMakeFiles/shardchain.dir/types/transaction.cc.o" "gcc" "src/CMakeFiles/shardchain.dir/types/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
