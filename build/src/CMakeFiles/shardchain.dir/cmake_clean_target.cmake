file(REMOVE_RECURSE
  "libshardchain.a"
)
