// Fixture for the parlint self-test: every rule must fire at least
// once in this file, UNSUPPRESSED. The parlint_detects_hazards CTest
// case runs the scanner over this file and expects a nonzero exit.
// This file is never compiled into any target (parlint is a token
// scanner; the declarations below only need to look like shardchain
// code, not link against it).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct ThreadPool;
struct StateDB;
struct Rng {
  explicit Rng(uint64_t seed);
  double UniformDouble();
};
uint64_t ChunkSeed(uint64_t base, uint64_t index);
template <typename B>
void ParallelFor(ThreadPool*, size_t, size_t, const B&);
template <typename B>
void ParallelChunks(ThreadPool*, size_t, size_t, const B&);

// Rule: raw-threading — concurrency primitives outside src/parallel/.
inline std::mutex g_lock;
inline std::atomic<int> g_counter{0};
inline std::once_flag g_once;
thread_local int tl_scratch = 0;

inline void SpawnWorker() {
  std::thread worker([] {});
  worker.join();
}

inline int FutureSum(std::promise<int>& result) {
  std::future<int> pending = result.get_future();
  auto task = std::async([] { return 41; });
  std::call_once(g_once, [] {});
  return task.get() + pending.get();
}

inline void RefCaptureAndSharedSum(ThreadPool* pool,
                                   std::vector<double>* out) {
  double total = 0.0;
  // Rules: parallel-ref-capture ([&] hides what the body touches) +
  // shared-accumulation (every lane bangs on the same `total`).
  ParallelFor(pool, out->size(), 64, [&](size_t i) {
    total += (*out)[i];
  });
  (void)total;
}

inline void SharedPushBack(ThreadPool* pool, std::vector<int>& sink) {
  // Rule: shared-accumulation — push_back reallocates under the feet
  // of concurrent lanes even when the capture is explicit.
  ParallelFor(pool, 100, 8, [&sink](size_t i) {
    sink.push_back(static_cast<int>(i));
  });
}

inline void UnseededStream(ThreadPool* pool, std::vector<double>* out) {
  // Rule: unseeded-parallel-rng — the seed is chunk-local but not
  // derived through ChunkSeed, so streams collide across regions.
  ParallelChunks(pool, out->size(), 64,
                 [out](size_t begin, size_t end, size_t chunk) {
                   Rng rng(12345 + chunk);
                   for (size_t i = begin; i < end; ++i) {
                     (*out)[i] = rng.UniformDouble();
                   }
                 });
}

inline void NestedFanOut(ThreadPool* pool, std::vector<double>* grid,
                         size_t rows, size_t cols) {
  // Rule: nested-parallel — the inner region serializes inline; legal,
  // but it must say so with a waiver.
  ParallelFor(pool, rows, 1, [pool, grid, cols](size_t r) {
    ParallelFor(pool, cols, 64, [grid, cols, r](size_t c) {
      (*grid)[r * cols + c] = 0.0;
    });
  });
}

size_t SnapshotOf(StateDB* state);
bool ApplySomething(StateDB* state);
bool Commit(StateDB* state, size_t id);

struct Journal {
  size_t Snapshot();
  bool Commit(size_t id);
  bool RevertTo(size_t id);
};

// Rule: unbalanced-snapshot — the id never reaches Commit or RevertTo.
inline bool LeakySnapshot(Journal* state) {
  const size_t snap = state->Snapshot();
  (void)snap;
  return true;
}

// Rule: unbalanced-snapshot — committed on the happy path but no
// RevertTo anywhere: the failure path leaks the bracket.
inline void CommitOnly(Journal* state) {
  const size_t snap = state->Snapshot();
  (void)state->Commit(snap);
}

// Rule: unbalanced-snapshot — the id is discarded outright.
inline void DiscardedSnapshot(Journal* state) {
  state->Snapshot();
}

}  // namespace fixture
