// Fixture for the parlint --check-waivers self-test: perfectly clean
// code carrying waivers that suppress nothing. A plain scan exits 0;
// the parlint_flags_stale_waivers CTest case runs with --check-waivers
// and expects a nonzero exit with one `stale-waiver` finding per
// entry. This file is never compiled into any target.

#include <cstddef>
#include <vector>

namespace fixture {

struct ThreadPool;
template <typename B>
void ParallelFor(ThreadPool*, size_t, size_t, const B&);

// parlint:allow(parallel-ref-capture): left behind after a cleanup
inline void ScaleInPlace(ThreadPool* pool, std::vector<double>* out) {
  ParallelFor(pool, out->size(), 64, [out](size_t i) {
    (*out)[i] = 2.0 * (*out)[i];  // parlint:allow(shared-accumulation)
  });
}

}  // namespace fixture
