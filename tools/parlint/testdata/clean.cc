// Fixture for the parlint self-test: the same shapes as hazards.cc
// written the contract-compliant way — explicit captures, per-chunk
// ChunkSeed streams, disjoint writes, balanced snapshot brackets, no
// raw threading. The parlint_clean_fixture CTest case expects a clean
// exit with ZERO findings (nothing here even needs a waiver). This
// file is never compiled into any target.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct ThreadPool;
struct Rng {
  explicit Rng(uint64_t seed);
  double UniformDouble();
};
uint64_t ChunkSeed(uint64_t base, uint64_t index);
template <typename B>
void ParallelFor(ThreadPool*, size_t, size_t, const B&);
template <typename B>
void ParallelChunks(ThreadPool*, size_t, size_t, const B&);
template <typename T, typename M, typename C>
T ParallelReduce(ThreadPool*, size_t, size_t, T, const M&, const C&);

// Disjoint writes with an explicit capture list: every lane owns slot
// i and nothing else.
inline void ScaleInPlace(ThreadPool* pool, std::vector<double>* out) {
  ParallelFor(pool, out->size(), 64, [out](size_t i) {
    (*out)[i] = 2.0 * (*out)[i];
  });
}

// Accumulation through the ordered reduction, not a shared cell; the
// per-chunk partial is a body-local.
inline double Sum(ThreadPool* pool, const std::vector<double>& xs) {
  return ParallelReduce(
      pool, xs.size(), 64, 0.0,
      [&xs](size_t begin, size_t end, size_t) {
        double partial = 0.0;
        for (size_t i = begin; i < end; ++i) partial += xs[i];
        return partial;
      },
      [](double acc, double p) { return acc + p; });
}

// Per-chunk slot accumulation: chunk c writes (*slots)[c] only.
inline void ChunkTotals(ThreadPool* pool, const std::vector<double>& xs,
                        std::vector<double>* slots) {
  ParallelChunks(pool, xs.size(), 64,
                 [&xs, slots](size_t begin, size_t end, size_t chunk) {
                   double acc = 0.0;
                   for (size_t i = begin; i < end; ++i) acc += xs[i];
                   (*slots)[chunk] = acc;
                 });
}

// Randomized chunk work seeded through ChunkSeed: stream depends on
// the chunk index alone, never on scheduling.
inline void FillNoise(ThreadPool* pool, uint64_t base,
                      std::vector<double>* out) {
  ParallelChunks(pool, out->size(), 64,
                 [out, base](size_t begin, size_t end, size_t chunk) {
                   Rng rng(ChunkSeed(base, chunk));
                   for (size_t i = begin; i < end; ++i) {
                     (*out)[i] = rng.UniformDouble();
                   }
                 });
}

struct Journal {
  size_t Snapshot();
  bool Commit(size_t id);
  bool RevertTo(size_t id);
};

bool TryApply(Journal* state);

// The §10 bracket: the snapshot id reaches Commit on the success path
// and RevertTo on the failure path.
inline bool BalancedSnapshot(Journal* state) {
  const size_t snap = state->Snapshot();
  if (TryApply(state)) {
    (void)state->Commit(snap);
    return true;
  }
  (void)state->RevertTo(snap);
  return false;
}

}  // namespace fixture
