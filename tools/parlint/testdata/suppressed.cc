// Fixture for the parlint self-test: the same hazard patterns as
// hazards.cc, but every one carries a parlint:allow() waiver — the
// parlint_honors_suppressions CTest case expects a clean exit, and the
// same run under --check-waivers must stay clean because every waiver
// here suppresses a real finding. This file is never compiled into any
// target.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct ThreadPool;
struct Rng {
  explicit Rng(uint64_t seed);
  double UniformDouble();
};
uint64_t ChunkSeed(uint64_t base, uint64_t index);
template <typename B>
void ParallelFor(ThreadPool*, size_t, size_t, const B&);
template <typename B>
void ParallelChunks(ThreadPool*, size_t, size_t, const B&);

// parlint:allow(raw-threading): fixture exercising the waiver path
inline std::mutex g_lock;

// parlint:allow(raw-threading): scratch buffer audited, never observable
thread_local int tl_scratch = 0;

inline int AsyncSum() {
  auto task = std::async([] { return 41; });  // parlint:allow(raw-threading)
  return task.get() + 1;
}

inline void RefCapture(ThreadPool* pool, std::vector<double>* out) {
  // parlint:allow(parallel-ref-capture): body audited, writes disjoint
  ParallelFor(pool, out->size(), 64, [&](size_t i) {
    (*out)[i] = 2.0 * (*out)[i];
  });
}

inline void SharedSum(ThreadPool* pool, const std::vector<double>& xs,
                      double* total) {
  ParallelFor(pool, xs.size(), 64, [&xs, total](size_t i) {
    *total += xs[i];  // parlint:allow(shared-accumulation)
  });
}

inline void HouseStream(ThreadPool* pool, std::vector<double>* out) {
  ParallelChunks(pool, out->size(), 64,
                 [out](size_t begin, size_t end, size_t chunk) {
                   // parlint:allow(unseeded-parallel-rng): chunk-keyed
                   Rng rng(chunk * 2654435761u);
                   for (size_t i = begin; i < end; ++i) {
                     (*out)[i] = rng.UniformDouble();
                   }
                 });
}

inline void NestedFanOut(ThreadPool* pool, std::vector<double>* grid,
                         size_t rows, size_t cols) {
  ParallelFor(pool, rows, 1, [pool, grid, cols](size_t r) {
    // parlint:allow(nested-parallel): inner region serializes inline
    ParallelFor(pool, cols, 64, [grid, cols, r](size_t c) {
      (*grid)[r * cols + c] = 0.0;
    });
  });
}

struct Journal {
  size_t Snapshot();
  bool Commit(size_t id);
};

inline void CommitOnly(Journal* state) {
  // parlint:allow(unbalanced-snapshot): infallible path, no rollback
  const size_t snap = state->Snapshot();
  (void)state->Commit(snap);
}

}  // namespace fixture
