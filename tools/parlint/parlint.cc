// parlint — static enforcement of the parallel-determinism and
// state-journal contracts.
//
// DESIGN.md §9 makes parallel results scheduling-independent through a
// four-rule contract (fixed chunking, disjoint writes, ordered
// reduction, per-chunk ChunkSeed RNG streams), and §10 keeps the state
// journal bounded through a snapshot bracket discipline (every
// Snapshot() id reaches Commit or RevertTo on every path). Both were
// hand-enforced conventions: a reviewer could merge a `[&]`-capturing
// ParallelFor body or a leaked snapshot and nothing failed until a
// seed or a TSan run happened to hit it. parlint turns them into
// machine-checked invariants.
//
// Like detlint, this is a heuristic token-level scanner built on the
// shared liblint driver (tools/liblint/), not a compiler plugin. Rules
// 2–4 are conservative approximations over lexical call extents and
// rule 5 is a scope-based approximation (see DESIGN.md §11 for why);
// intentional deviations carry inline
//
//     // parlint:allow(<rule>[,<rule>...]): justification
//
// waivers on the offending line or the line above.
//
// Usage:
//   parlint [--report <file.json>] [--root <dir>] [--list-rules]
//           [--rules-md] [--check-waivers] <dir-or-file>...
//
// Exit codes: 0 = clean, 1 = usage / IO error, 2 = unsuppressed
// findings present.

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "liblint/liblint.h"

namespace {

using liblint::EmitFinding;
using liblint::Finding;
using liblint::IsIdentChar;
using liblint::MatchBrace;
using liblint::MatchParen;
using liblint::RuleInfo;
using liblint::Source;
using liblint::TokenAt;

constexpr RuleInfo kRules[] = {
    {"raw-threading",
     "std::thread/async/future/promise/call_once/mutex/atomic/"
     "condition_variable (and friends) or a thread_local declaration "
     "outside src/parallel/; all concurrency must go through the §9 "
     "primitives so the determinism contract stays in one place"},
    {"parallel-ref-capture",
     "[&] or by-reference default capture on a lambda at a "
     "ParallelFor/ParallelReduce/ParallelChunks call site; §9 rule 2 "
     "(disjoint writes) is only reviewable when every captured name is "
     "explicit"},
    {"unseeded-parallel-rng",
     "RNG constructed inside a parallel body without a ChunkSeed(...)-"
     "derived seed; §9 rule 4 requires per-chunk streams, anything else "
     "makes results depend on chunk scheduling"},
    {"shared-accumulation",
     "+=/push_back on a captured non-local inside a ParallelFor body; "
     "accumulate into per-chunk slots or use ParallelReduce's ordered "
     "fold"},
    {"unbalanced-snapshot",
     "Snapshot() whose id does not reach both Commit and RevertTo later "
     "in the enclosing function (scope-based approximation); a one-sided "
     "bracket either leaks journal entries or loses the rollback path "
     "(§10)"},
    {"nested-parallel",
     "ParallelFor/ParallelReduce/ParallelChunks lexically inside another "
     "parallel body; legal but it serializes inline, so it must carry an "
     "explicit waiver acknowledging the flattened schedule"},
};

// raw-threading does not apply here: src/parallel/ is the one place
// allowed to touch the primitives it wraps.
constexpr char kParallelDir[] = "src/parallel/";

const std::set<std::string>& ThreadingNames() {
  static const std::set<std::string> kNames = {
      "thread",
      "jthread",
      "this_thread",
      "async",
      "future",
      "shared_future",
      "promise",
      "packaged_task",
      "mutex",
      "timed_mutex",
      "recursive_mutex",
      "recursive_timed_mutex",
      "shared_mutex",
      "shared_timed_mutex",
      "lock_guard",
      "unique_lock",
      "shared_lock",
      "scoped_lock",
      "condition_variable",
      "condition_variable_any",
      "atomic",
      "atomic_flag",
      "atomic_ref",
      "atomic_thread_fence",
      "counting_semaphore",
      "binary_semaphore",
      "latch",
      "barrier",
      "call_once",
      "once_flag",
  };
  return kNames;
}

const std::set<std::string>& RngTypeNames() {
  static const std::set<std::string> kNames = {
      "Rng",          "mt19937",       "mt19937_64",
      "minstd_rand",  "minstd_rand0",  "default_random_engine",
      "knuth_b",      "ranlux24",      "ranlux48",
      "ranlux24_base", "ranlux48_base",
  };
  return kNames;
}

bool IsKeyword(const std::string& ident) {
  static const std::set<std::string> kKeywords = {
      "if",     "else",  "while",  "for",      "do",    "return",
      "switch", "case",  "const",  "auto",     "break", "continue",
      "void",   "throw", "static", "constexpr"};
  return kKeywords.count(ident) > 0;
}

// ------------------------------ Scanner ---------------------------------

class Scanner {
 public:
  Scanner(const Source& src, std::vector<Finding>* out)
      : src_(src), code_(src.code()), out_(out) {}

  void ScanFile() {
    CollectParallelCalls();
    ScanRawThreading();
    ScanRefCaptures();
    ScanParallelRng();
    ScanSharedAccumulation();
    ScanSnapshots();
    ScanNestedParallel();
  }

 private:
  // A ParallelFor/ParallelReduce/ParallelChunks call site and the
  // lexical extent of its argument list. The lambda body an invocation
  // carries lives inside [open, close], which is what rules 2–4 and 6
  // scan — a conservative approximation of "the parallel body".
  struct Call {
    size_t name_pos = 0;
    size_t open = 0;   // '('.
    size_t close = 0;  // Matching ')'.
    bool is_for = false;
  };

  void Emit(size_t offset, const char* rule) {
    EmitFinding(src_, offset, rule, out_);
  }

  // Reads the identifier starting at `pos` (empty if none).
  std::string IdentAt(size_t pos) const {
    size_t end = pos;
    while (end < code_.size() && IsIdentChar(code_[end])) ++end;
    return code_.substr(pos, end - pos);
  }

  // Reads the identifier ENDING at `end` (exclusive); empty if none.
  std::string IdentEndingAt(size_t end) const {
    size_t begin = end;
    while (begin > 0 && IsIdentChar(code_[begin - 1])) --begin;
    return code_.substr(begin, end - begin);
  }

  size_t SkipWs(size_t pos) const {
    while (pos < code_.size() &&
           std::isspace(static_cast<unsigned char>(code_[pos]))) {
      ++pos;
    }
    return pos;
  }

  // Last non-whitespace position before `pos`, or npos.
  size_t PrevNonWs(size_t pos) const {
    while (pos > 0) {
      --pos;
      if (!std::isspace(static_cast<unsigned char>(code_[pos]))) return pos;
    }
    return std::string::npos;
  }

  void CollectParallelCalls() {
    for (const char* fn : {"ParallelChunks", "ParallelFor", "ParallelReduce"}) {
      const std::string name = fn;
      size_t pos = 0;
      while ((pos = code_.find(name, pos)) != std::string::npos) {
        if (!TokenAt(code_, pos, name)) {
          pos += name.size();
          continue;
        }
        const size_t open = SkipWs(pos + name.size());
        if (open >= code_.size() || code_[open] != '(') {
          pos += name.size();
          continue;
        }
        const size_t close = MatchParen(code_, open);
        if (close == std::string::npos) {
          pos += name.size();
          continue;
        }
        Call call;
        call.name_pos = pos;
        call.open = open;
        call.close = close;
        call.is_for = name == "ParallelFor";
        calls_.push_back(call);
        pos += name.size();
      }
    }
  }

  // Rule 1: raw-threading — `std::` followed by a threading name, or a
  // bare `thread_local` declaration (per-thread state makes results a
  // function of the schedule), anywhere outside src/parallel/.
  void ScanRawThreading() {
    if (src_.path().find(kParallelDir) != std::string::npos) return;
    size_t pos = 0;
    while ((pos = code_.find("std::", pos)) != std::string::npos) {
      const std::string ident = IdentAt(pos + 5);
      if (!ident.empty() && ThreadingNames().count(ident) > 0) {
        Emit(pos, "raw-threading");
      }
      pos += 5;
    }
    pos = 0;
    while ((pos = code_.find("thread_local", pos)) != std::string::npos) {
      if (TokenAt(code_, pos, "thread_local")) {
        Emit(pos, "raw-threading");
      }
      pos += 12;
    }
  }

  // Rule 2: parallel-ref-capture — `[&]` / `[&, ...]` anywhere inside a
  // parallel call's argument list.
  void ScanRefCaptures() {
    for (const Call& call : calls_) {
      for (size_t i = call.open + 1; i < call.close; ++i) {
        if (code_[i] != '[') continue;
        size_t j = SkipWs(i + 1);
        if (j >= call.close || code_[j] != '&') continue;
        j = SkipWs(j + 1);
        if (j < code_.size() && (code_[j] == ']' || code_[j] == ',')) {
          Emit(i, "parallel-ref-capture");
        }
      }
    }
  }

  // Rule 3: unseeded-parallel-rng — an RNG constructed inside a
  // parallel call extent whose constructor arguments never mention
  // ChunkSeed.
  void ScanParallelRng() {
    for (const Call& call : calls_) {
      for (const std::string& type : RngTypeNames()) {
        size_t pos = call.open;
        while ((pos = code_.find(type, pos)) != std::string::npos &&
               pos < call.close) {
          if (!TokenAt(code_, pos, type)) {
            pos += type.size();
            continue;
          }
          size_t after = SkipWs(pos + type.size());
          // `Rng name(args)`, `Rng name{args}`, `Rng name;`,
          // `Rng name = expr;`, or a bare temporary `Rng(args)`.
          std::string seed_expr;
          bool is_construction = false;
          if (after < call.close && IsIdentChar(code_[after]) &&
              !std::isdigit(static_cast<unsigned char>(code_[after]))) {
            const std::string name = IdentAt(after);
            size_t next = SkipWs(after + name.size());
            if (next < call.close &&
                (code_[next] == '(' || code_[next] == '{')) {
              const size_t end = code_[next] == '('
                                     ? MatchParen(code_, next)
                                     : MatchBrace(code_, next);
              if (end != std::string::npos && end <= call.close) {
                is_construction = true;
                seed_expr = code_.substr(next + 1, end - next - 1);
              }
            } else if (next < call.close && code_[next] == ';') {
              is_construction = true;  // Default-constructed: no seed.
            } else if (next < call.close && code_[next] == '=' &&
                       next + 1 < call.close && code_[next + 1] != '=') {
              const size_t semi = code_.find(';', next);
              if (semi != std::string::npos && semi <= call.close) {
                is_construction = true;
                seed_expr = code_.substr(next + 1, semi - next - 1);
              }
            }
          } else if (after < call.close && code_[after] == '(') {
            const size_t end = MatchParen(code_, after);
            if (end != std::string::npos && end <= call.close) {
              is_construction = true;
              seed_expr = code_.substr(after + 1, end - after - 1);
            }
          }
          if (is_construction && seed_expr.find("ChunkSeed") ==
                                     std::string::npos) {
            Emit(pos, "unseeded-parallel-rng");
          }
          pos += type.size();
        }
      }
    }
  }

  // True when `name` looks locally declared inside [begin, end): some
  // occurrence is preceded by a type-ish token (identifier that is not
  // `return`-like, or `&`/`*`/`>` that itself follows a type). Capture
  // lists (`[&name`) and address-of arguments (`(&name`, `, &name`) do
  // NOT count as declarations.
  bool LocallyDeclared(const std::string& name, size_t begin,
                       size_t end) const {
    size_t pos = begin;
    while ((pos = code_.find(name, pos)) != std::string::npos && pos < end) {
      if (!TokenAt(code_, pos, name)) {
        pos += name.size();
        continue;
      }
      const size_t prev = PrevNonWs(pos);
      if (prev == std::string::npos) return false;
      const char c = code_[prev];
      if (IsIdentChar(c)) {
        const std::string before = IdentEndingAt(prev + 1);
        static const std::set<std::string> kNotTypes = {
            "return", "throw", "new", "delete", "goto", "case", "co_return"};
        if (kNotTypes.count(before) == 0) return true;
      } else if (c == '&' || c == '*' || c == '>') {
        const size_t prev2 = PrevNonWs(prev);
        if (prev2 != std::string::npos &&
            (IsIdentChar(code_[prev2]) || code_[prev2] == '>')) {
          return true;  // `SubslotPartial& p`, `vector<T>* v`, `T> x`.
        }
      }
      pos += name.size();
    }
    return false;
  }

  // Root identifier of the statement containing `op_pos`: the first
  // non-keyword identifier after the previous ';'/'{'/'}'.
  std::string StatementRoot(size_t op_pos, size_t extent_begin) const {
    size_t start = op_pos;
    while (start > extent_begin) {
      const char c = code_[start - 1];
      if (c == ';' || c == '{' || c == '}') break;
      --start;
    }
    for (size_t i = start; i < op_pos; ++i) {
      if (IsIdentChar(code_[i]) &&
          (i == 0 || !IsIdentChar(code_[i - 1])) &&
          !std::isdigit(static_cast<unsigned char>(code_[i]))) {
        const std::string ident = IdentAt(i);
        if (!IsKeyword(ident)) return ident;
        i += ident.size();
      }
    }
    return {};
  }

  // Rule 4: shared-accumulation — `+=` / push_back / emplace_back on a
  // captured (not locally declared) target inside a ParallelFor body.
  void ScanSharedAccumulation() {
    for (const Call& call : calls_) {
      if (!call.is_for) continue;
      // `+=` sites.
      for (size_t i = call.open + 1; i + 1 < call.close; ++i) {
        if (code_[i] != '+' || code_[i + 1] != '=') continue;
        if (i > 0 && code_[i - 1] == '+') continue;  // `++` then `=`? no.
        const std::string root = StatementRoot(i, call.open + 1);
        if (!root.empty() &&
            !LocallyDeclared(root, call.open + 1, call.close)) {
          Emit(i, "shared-accumulation");
        }
      }
      // Growth calls.
      for (const char* member : {"push_back", "emplace_back"}) {
        const std::string name = member;
        size_t pos = call.open;
        while ((pos = code_.find(name, pos)) != std::string::npos &&
               pos < call.close) {
          if (!TokenAt(code_, pos, name)) {
            pos += name.size();
            continue;
          }
          const size_t prev = PrevNonWs(pos);
          const bool member_call =
              prev != std::string::npos &&
              (code_[prev] == '.' ||
               (code_[prev] == '>' && prev > 0 && code_[prev - 1] == '-'));
          if (member_call) {
            const std::string root = StatementRoot(pos, call.open + 1);
            if (!root.empty() &&
                !LocallyDeclared(root, call.open + 1, call.close)) {
              Emit(pos, "shared-accumulation");
            }
          }
          pos += name.size();
        }
      }
    }
  }

  // ---- Rule 5 helpers: enclosing-function lookup over brace pairs ----

  struct Brace {
    size_t open;
    size_t close;
  };

  void CollectBraces() {
    if (!braces_.empty()) return;
    std::vector<size_t> stack;
    for (size_t i = 0; i < code_.size(); ++i) {
      if (code_[i] == '{') stack.push_back(i);
      if (code_[i] == '}' && !stack.empty()) {
        braces_.push_back({stack.back(), i});
        stack.pop_back();
      }
    }
  }

  // Matches backward from `close` (indexing ')') to its '('.
  size_t MatchParenBackward(size_t close) const {
    int depth = 0;
    for (size_t i = close + 1; i-- > 0;) {
      if (code_[i] == ')') ++depth;
      if (code_[i] == '(' && --depth == 0) return i;
    }
    return std::string::npos;
  }

  // The innermost enclosing block that reads like a function body:
  // opener preceded by ')' whose matching '(' follows a plain
  // identifier (not if/for/while/switch/catch, not a lambda's ']').
  // Control blocks, else/try/do blocks, and lambda bodies are ascended
  // through; if nothing qualifies, the outermost enclosing block wins.
  Brace EnclosingFunctionBody(size_t offset) {
    CollectBraces();
    std::vector<Brace> enclosing;
    for (const Brace& b : braces_) {
      if (b.open < offset && offset < b.close) enclosing.push_back(b);
    }
    std::sort(enclosing.begin(), enclosing.end(),
              [](const Brace& a, const Brace& b) {
                return a.close - a.open < b.close - b.open;
              });
    for (const Brace& b : enclosing) {
      const size_t prev = PrevNonWs(b.open);
      if (prev == std::string::npos) continue;
      char c = code_[prev];
      size_t at = prev;
      // Skip trailing specifiers: `) const {`, `) noexcept {`.
      while (IsIdentChar(c)) {
        const std::string ident = IdentEndingAt(at + 1);
        static const std::set<std::string> kSpecifiers = {
            "const", "noexcept", "override", "final", "mutable"};
        if (kSpecifiers.count(ident) == 0) break;
        const size_t before = PrevNonWs(at + 1 - ident.size());
        if (before == std::string::npos) break;
        at = before;
        c = code_[at];
      }
      if (c == ')') {
        const size_t open_paren = MatchParenBackward(at);
        if (open_paren == std::string::npos) continue;
        const size_t before = PrevNonWs(open_paren);
        if (before == std::string::npos) continue;
        if (code_[before] == ']') continue;  // Lambda body: ascend.
        if (IsIdentChar(code_[before])) {
          const std::string head = IdentEndingAt(before + 1);
          static const std::set<std::string> kControl = {
              "if", "for", "while", "switch", "catch"};
          if (kControl.count(head) > 0) continue;  // Control: ascend.
          return b;
        }
        continue;
      }
      if (IsIdentChar(c)) {
        const std::string head = IdentEndingAt(at + 1);
        if (head == "else" || head == "try" || head == "do") continue;
        // namespace/class/struct scope: no function body below here.
        break;
      }
    }
    return enclosing.empty() ? Brace{0, code_.size() - 1} : enclosing.back();
  }

  // Does `fn`(args-containing-`id`) appear in [begin, end)?
  bool CallWithArg(const std::string& fn, const std::string& id, size_t begin,
                   size_t end) const {
    size_t pos = begin;
    while ((pos = code_.find(fn, pos)) != std::string::npos && pos < end) {
      if (!TokenAt(code_, pos, fn)) {
        pos += fn.size();
        continue;
      }
      const size_t open = SkipWs(pos + fn.size());
      if (open < end && code_[open] == '(') {
        const size_t close = MatchParen(code_, open);
        if (close != std::string::npos) {
          const std::string args = code_.substr(open + 1, close - open - 1);
          size_t p = 0;
          while ((p = args.find(id, p)) != std::string::npos) {
            if (TokenAt(args, p, id)) return true;
            p += id.size();
          }
        }
      }
      pos += fn.size();
    }
    return false;
  }

  // Rule 5: unbalanced-snapshot — `x.Snapshot()` / `x->Snapshot()`
  // whose assigned id is not later passed to both Commit and RevertTo
  // within the enclosing function body. A call whose id is discarded
  // is always flagged.
  void ScanSnapshots() {
    size_t pos = 0;
    const std::string name = "Snapshot";
    while ((pos = code_.find(name, pos)) != std::string::npos) {
      if (!TokenAt(code_, pos, name)) {
        pos += name.size();
        continue;
      }
      // Must be a member call: preceded by '.' or '->'.
      const bool dot = pos > 0 && code_[pos - 1] == '.';
      const bool arrow =
          pos > 1 && code_[pos - 2] == '-' && code_[pos - 1] == '>';
      size_t after = SkipWs(pos + name.size());
      const bool empty_call =
          (dot || arrow) && after < code_.size() && code_[after] == '(' &&
          SkipWs(after + 1) < code_.size() &&
          code_[SkipWs(after + 1)] == ')';
      if (!empty_call) {
        pos += name.size();
        continue;
      }
      // Statement start, then the id on the left of the last `=`.
      size_t start = pos;
      while (start > 0) {
        const char c = code_[start - 1];
        if (c == ';' || c == '{' || c == '}') break;
        --start;
      }
      std::string id;
      size_t eq = std::string::npos;
      for (size_t i = start; i < pos; ++i) {
        if (code_[i] == '=' && i + 1 < pos && code_[i + 1] != '=' &&
            i > 0 && std::string("=!<>+-*/%&|^").find(code_[i - 1]) ==
                         std::string::npos) {
          eq = i;
        }
      }
      if (eq != std::string::npos) {
        size_t e = eq;
        while (e > start &&
               std::isspace(static_cast<unsigned char>(code_[e - 1]))) {
          --e;
        }
        id = IdentEndingAt(e);
      }
      if (id.empty()) {
        Emit(pos, "unbalanced-snapshot");  // Snapshot id discarded.
        pos += name.size();
        continue;
      }
      const Brace body = EnclosingFunctionBody(pos);
      const bool committed = CallWithArg("Commit", id, pos, body.close);
      const bool reverted = CallWithArg("RevertTo", id, pos, body.close);
      if (!committed || !reverted) {
        Emit(pos, "unbalanced-snapshot");
      }
      pos += name.size();
    }
  }

  // Rule 6: nested-parallel — a parallel call whose name sits inside
  // another parallel call's argument extent.
  void ScanNestedParallel() {
    for (const Call& inner : calls_) {
      for (const Call& outer : calls_) {
        if (inner.name_pos > outer.open && inner.name_pos < outer.close) {
          Emit(inner.name_pos, "nested-parallel");
          break;
        }
      }
    }
  }

  const Source& src_;
  const std::string& code_;
  std::vector<Finding>* out_;
  std::vector<Call> calls_;
  std::vector<Brace> braces_;
};

}  // namespace

int main(int argc, char** argv) {
  liblint::Tool tool;
  tool.name = "parlint";
  tool.tagline =
      "the §9 parallel-determinism and §10 snapshot-journal contracts";
  tool.rules = kRules;
  tool.rule_count = sizeof(kRules) / sizeof(kRules[0]);
  tool.scan = [](const Source& src, std::vector<Finding>* out) {
    Scanner scanner(src, out);
    scanner.ScanFile();
  };
  return liblint::RunLinter(tool, argc, argv);
}
