// Unit tests for the shared lint core. detlint, parlint, and flowlint
// all sit on this lexer and driver plumbing, so a regression here
// would blind every scanner at once — these tests pin the
// comment/literal stripper, the waiver parser, the stale-waiver pass,
// the function/call-site extraction, and the JSON report schema
// (against a golden fixture) directly.

#include "liblint/liblint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace liblint {
namespace {

// --------------------------- Token utilities ----------------------------

TEST(TokenAtTest, RespectsIdentifierBoundaries) {
  const std::string s = "thread_count threads thread";
  EXPECT_FALSE(TokenAt(s, 0, "thread"));   // thread_count.
  EXPECT_FALSE(TokenAt(s, 13, "thread"));  // threads.
  EXPECT_TRUE(TokenAt(s, 21, "thread"));
}

TEST(TokenAtTest, PunctuationDelimits) {
  const std::string s = "std::rand();";
  EXPECT_TRUE(TokenAt(s, 5, "rand"));
  EXPECT_FALSE(TokenAt(s, 5, "ran"));
}

TEST(MatchTest, AngleBracketsNest) {
  const std::string s = "map<vector<int>, set<long>> x;";
  EXPECT_EQ(MatchAngle(s, 3), 26u);
  EXPECT_EQ(MatchAngle(s, 10), 14u);
}

TEST(MatchTest, AngleBailsAtStatementEnd) {
  const std::string s = "if (a < b) { return; }";
  EXPECT_EQ(MatchAngle(s, 7), std::string::npos);
}

TEST(MatchTest, AdjacentAngleClosersResolveInnerAndOuter) {
  //                   0123456789012345678
  const std::string s = "vector<vector<int>> x;";
  EXPECT_EQ(MatchAngle(s, 6), 18u);   // Outer closes on the second '>'.
  EXPECT_EQ(MatchAngle(s, 13), 17u);  // Inner closes on the first.
  const std::string deep = "map<int, vector<pair<int, int>>> m;";
  EXPECT_EQ(MatchAngle(deep, 3), 31u);
}

TEST(MatchTest, ParensAndBracesNest) {
  const std::string s = "f(g(h(1)), [] { return 0; })";
  EXPECT_EQ(MatchParen(s, 1), 27u);
  EXPECT_EQ(MatchParen(s, 3), 8u);
  const std::string b = "{ if (x) { y(); } }";
  EXPECT_EQ(MatchBrace(b, 0), 18u);
  EXPECT_EQ(MatchBrace(b, 9), 16u);
}

// ----------------------------- Stripping --------------------------------

TEST(SourceTest, BlanksLineAndBlockComments) {
  Source src("t.cc", "int a; // std::rand()\nint b; /* time(0) */ int c;\n",
             "tool");
  EXPECT_EQ(src.code().find("rand"), std::string::npos);
  EXPECT_EQ(src.code().find("time"), std::string::npos);
  // Code outside comments survives, offsets preserved.
  EXPECT_NE(src.code().find("int a;"), std::string::npos);
  EXPECT_NE(src.code().find("int c;"), std::string::npos);
  EXPECT_EQ(src.code().size(), src.raw().size());
}

TEST(SourceTest, BlanksStringAndCharLiterals) {
  Source src("t.cc", "auto s = \"std::rand()\"; char c = 'r';\n", "tool");
  EXPECT_EQ(src.code().find("rand"), std::string::npos);
  EXPECT_EQ(src.code().find("'r'"), std::string::npos);
  // The quotes themselves survive so offsets line up.
  EXPECT_NE(src.code().find('"'), std::string::npos);
}

TEST(SourceTest, BlanksRawStrings) {
  Source src("t.cc", "auto s = R\"(srand(1) \" unbalanced)\";\nint x;\n",
             "tool");
  EXPECT_EQ(src.code().find("srand"), std::string::npos);
  EXPECT_NE(src.code().find("int x;"), std::string::npos);
}

TEST(SourceTest, BlanksRawStringsWithCustomDelimiters) {
  // A plain )" inside the literal must NOT close it — only )xy" does.
  Source src("t.cc",
             "auto s = R\"xy(rand() )\" still inside)xy\";\nint x;\n",
             "tool");
  EXPECT_EQ(src.code().find("rand"), std::string::npos);
  EXPECT_EQ(src.code().find("still inside"), std::string::npos);
  EXPECT_NE(src.code().find("int x;"), std::string::npos);
}

TEST(SourceTest, BackslashContinuedLineCommentKeepsBlanking) {
  // The comment logically continues onto the next physical line
  // ([lex.phases] splicing): the continuation is comment text, not
  // code, so the scanner must not see the rand() call.
  Source src("t.cc",
             "int a; // comment continues \\\n"
             "rand(); still comment\n"
             "int b;\n",
             "tool");
  EXPECT_EQ(src.code().find("rand"), std::string::npos);
  EXPECT_NE(src.code().find("int a;"), std::string::npos);
  EXPECT_NE(src.code().find("int b;"), std::string::npos);
}

TEST(SourceTest, CrLfBackslashContinuationAlsoContinues) {
  Source src("t.cc",
             "int a; // comment \\\r\n"
             "srand(1); still comment\r\n"
             "int b;\n",
             "tool");
  EXPECT_EQ(src.code().find("srand"), std::string::npos);
  EXPECT_NE(src.code().find("int b;"), std::string::npos);
}

TEST(SourceTest, DigitSeparatorIsNotACharLiteral) {
  Source src("t.cc", "int n = 1'000'000; rand();\n", "tool");
  // If 1'000'000 were lexed as char literals the call would vanish.
  EXPECT_NE(src.code().find("rand"), std::string::npos);
}

TEST(SourceTest, LineOfAndLineText) {
  Source src("t.cc", "first\n  second line  \nthird\n", "tool");
  EXPECT_EQ(src.LineOf(0), 1u);
  EXPECT_EQ(src.LineOf(6), 2u);
  EXPECT_EQ(src.LineText(2), "second line");
  EXPECT_EQ(src.LineText(99), "");
}

// --------------------------- Waiver parsing -----------------------------

TEST(SourceTest, ParsesWaiverLists) {
  Source src("t.cc",
             "// tool:allow(rule-a, rule-b): reason\n"
             "int x; // tool:allow(rule-c)\n"
             "/* tool:allow(*) */ int y;\n",
             "tool");
  ASSERT_EQ(src.waivers().size(), 3u);
  EXPECT_TRUE(src.waivers().at(1).count("rule-a"));
  EXPECT_TRUE(src.waivers().at(1).count("rule-b"));
  EXPECT_TRUE(src.waivers().at(2).count("rule-c"));
  EXPECT_TRUE(src.waivers().at(3).count("*"));
}

TEST(SourceTest, SuppressionCoversSameLineAndLineAbove) {
  Source src("t.cc",
             "// tool:allow(rule-a)\n"
             "int x;\n"
             "int y;\n",
             "tool");
  EXPECT_TRUE(src.Suppressed(1, "rule-a"));
  EXPECT_TRUE(src.Suppressed(2, "rule-a"));   // Line above carries it.
  EXPECT_FALSE(src.Suppressed(3, "rule-a"));
  EXPECT_FALSE(src.Suppressed(2, "rule-b"));  // Other rules unaffected.
}

TEST(SourceTest, WildcardSuppressesEverything) {
  Source src("t.cc", "int x; // tool:allow(*)\n", "tool");
  EXPECT_TRUE(src.Suppressed(1, "anything"));
}

TEST(SourceTest, OtherToolsTagIsIgnored) {
  Source src("t.cc", "int x; // othertool:allow(rule-a)\n", "tool");
  EXPECT_FALSE(src.Suppressed(1, "rule-a"));
}

TEST(SourceTest, WaiverOnContinuedCommentLineRegistersWhereItSits) {
  // The allow() tag sits on the CONTINUATION line of a backslash-
  // continued comment; it must register on line 2 (its own line), not
  // line 1 (where the comment began), so it suppresses findings on
  // lines 2 and 3.
  Source src("t.cc",
             "int a; // see below \\\n"
             "tool:allow(rule-a): waiver on a continued line\n"
             "int b;\n",
             "tool");
  ASSERT_EQ(src.waivers().size(), 1u);
  EXPECT_TRUE(src.waivers().count(2));
  EXPECT_TRUE(src.Suppressed(2, "rule-a"));
  EXPECT_TRUE(src.Suppressed(3, "rule-a"));
  EXPECT_FALSE(src.Suppressed(1, "rule-a"));
}

TEST(SourceTest, WaiverInMultiLineBlockCommentRegistersOnItsOwnLine) {
  Source src("t.cc",
             "/* prose\n"
             "   tool:allow(rule-a)\n"
             "   more prose */\n"
             "int x;\n",
             "tool");
  ASSERT_EQ(src.waivers().size(), 1u);
  EXPECT_TRUE(src.waivers().count(2));
  EXPECT_TRUE(src.Suppressed(3, "rule-a"));
}

// --------------------------- Stale waivers ------------------------------

TEST(CheckWaiversTest, UsedWaiversAreSilent) {
  Source src("t.cc",
             "// tool:allow(rule-a)\n"
             "int x;\n",
             "tool");
  std::vector<Finding> findings;
  EmitFinding(src, 22, "rule-a", &findings);  // Offset inside line 2.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  std::vector<Finding> out;
  CheckWaivers(src, findings, &out);
  EXPECT_TRUE(out.empty());
}

TEST(CheckWaiversTest, UnusedWaiverBecomesStaleFinding) {
  Source src("t.cc",
             "// tool:allow(rule-a, rule-b)\n"
             "int x;\n",
             "tool");
  std::vector<Finding> findings;
  EmitFinding(src, 30, "rule-a", &findings);  // rule-b suppresses nothing.
  std::vector<Finding> out;
  CheckWaivers(src, findings, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, kStaleWaiverRule);
  EXPECT_EQ(out[0].line, 1u);
  EXPECT_FALSE(out[0].suppressed);
  EXPECT_NE(out[0].snippet.find("rule-b"), std::string::npos);
}

TEST(CheckWaiversTest, WaiverWithNoFindingsAtAllIsStale) {
  Source src("t.cc", "int x; // tool:allow(rule-a)\n", "tool");
  std::vector<Finding> out;
  CheckWaivers(src, {}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, kStaleWaiverRule);
}

TEST(CheckWaiversTest, WildcardUsedByAnyAdjacentFinding) {
  Source src("t.cc",
             "// tool:allow(*)\n"
             "int x;\n",
             "tool");
  std::vector<Finding> findings;
  EmitFinding(src, 17, "whatever", &findings);
  std::vector<Finding> out;
  CheckWaivers(src, findings, &out);
  EXPECT_TRUE(out.empty());
}

// --------------------- Function & call extraction -----------------------

std::vector<std::string> FunctionNames(const Source& src) {
  std::vector<std::string> names;
  for (const FunctionDef& fn : ExtractFunctions(src)) {
    names.push_back(fn.name);
  }
  return names;
}

TEST(ExtractFunctionsTest, FindsFreeAndQualifiedDefinitions) {
  Source src("t.cc",
             "uint64_t Mix(uint64_t h) { return h * 3; }\n"
             "Block Ledger::BuildBlock(const Address& a,\n"
             "                         uint64_t ts) const {\n"
             "  return Block{};\n"
             "}\n",
             "tool");
  const std::vector<FunctionDef> fns = ExtractFunctions(src);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "Mix");
  EXPECT_EQ(fns[1].name, "Ledger::BuildBlock");
  EXPECT_EQ(src.LineOf(fns[1].name_pos), 2u);
  EXPECT_LT(fns[1].body_open, fns[1].body_close);
}

TEST(ExtractFunctionsTest, QualifiesInlineMembersWithClassScope) {
  Source src("t.cc",
             "class StateDB {\n"
             " public:\n"
             "  size_t Snapshot() { return 1; }\n"
             "  struct Cursor {\n"
             "    void Next() { ++i_; }\n"
             "    int i_ = 0;\n"
             "  };\n"
             "};\n",
             "tool");
  const std::vector<std::string> names = FunctionNames(src);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "StateDB::Snapshot");
  EXPECT_EQ(names[1], "StateDB::Cursor::Next");
}

TEST(ExtractFunctionsTest, AscendsThroughConstructorInitializerLists) {
  Source src("t.cc",
             "Pool::Pool(size_t n, Config c)\n"
             "    : threads_(n), config_{std::move(c)} {\n"
             "  Start();\n"
             "}\n",
             "tool");
  const std::vector<std::string> names = FunctionNames(src);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "Pool::Pool");
}

TEST(ExtractFunctionsTest, SkipsControlFlowLambdasAndClassBodies) {
  Source src("t.cc",
             "void Walk(int n) {\n"
             "  if (n > 0) { n = -n; }\n"
             "  for (int i = 0; i < n; ++i) { Touch(i); }\n"
             "  auto f = [n](int x) { return x + n; };\n"
             "  while (n < 0) { ++n; }\n"
             "}\n"
             "struct Tag {};\n",
             "tool");
  // Only Walk itself: control blocks and the lambda body are not
  // function definitions, and Tag{} has no parameter list.
  EXPECT_EQ(FunctionNames(src), std::vector<std::string>{"Walk"});
}

TEST(ExtractCallSitesTest, FindsCallsWithQualifiersAndTemplateArgs) {
  Source src("t.cc",
             "void F() {\n"
             "  PackCandidates(h);\n"
             "  std::chrono::system_clock::now();\n"
             "  obj.Snapshot();\n"
             "  Make<Block>(1);\n"
             "  if (x) { return; }\n"
             "  static_cast<uint64_t>(y);\n"
             "}\n",
             "tool");
  std::vector<std::string> callees;
  for (const CallSite& call :
       ExtractCallSites(src, 0, src.code().size())) {
    callees.push_back(call.callee);
  }
  // if/static_cast are filtered; member calls record the member name;
  // the template argument list between name and '(' is skipped. (`F`
  // itself is a declaration-followed-by-paren and shows up too — the
  // extraction over-approximates and resolution discards unknowns.)
  const std::vector<std::string> expected = {
      "F", "PackCandidates", "std::chrono::system_clock::now", "Snapshot",
      "Make"};
  EXPECT_EQ(callees, expected);
}

// --------------------------- Record extraction ---------------------------

TEST(ExtractRecordsTest, FindsFieldsTypesAndDefaults) {
  Source src("t.cc",
             "struct Transaction {\n"
             "  Address sender;\n"
             "  uint64_t value = 0;\n"
             "  std::vector<uint8_t> payload;\n"
             "  std::map<Address, Account> touched{};\n"
             "  uint8_t bytes[32];\n"
             "  Hash256 Id() const;\n"
             "  bool operator==(const Transaction& o) const;\n"
             "};\n",
             "tool");
  const std::vector<RecordDef> recs = ExtractRecords(src);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].name, "Transaction");
  EXPECT_EQ(recs[0].kind, "struct");
  ASSERT_EQ(recs[0].fields.size(), 5u);
  EXPECT_EQ(recs[0].fields[0].name, "sender");
  EXPECT_EQ(recs[0].fields[0].type, "Address");
  EXPECT_EQ(recs[0].fields[1].name, "value");
  EXPECT_EQ(recs[0].fields[1].init, "= 0");
  EXPECT_EQ(recs[0].fields[2].name, "payload");
  EXPECT_EQ(recs[0].fields[2].type, "std::vector<uint8_t>");
  EXPECT_EQ(recs[0].fields[3].name, "touched");
  EXPECT_EQ(recs[0].fields[3].type, "std::map<Address, Account>");
  EXPECT_EQ(recs[0].fields[4].name, "bytes");
}

TEST(ExtractRecordsTest, TracksAccessStaticAndMutable) {
  Source src("t.cc",
             "class Account {\n"
             " public:\n"
             "  uint64_t balance = 0;\n"
             "  static constexpr size_t kMax = 5;\n"
             " private:\n"
             "  mutable Hash256 digest_cache_;\n"
             "  mutable bool digest_valid_ = false;\n"
             "};\n",
             "tool");
  const std::vector<RecordDef> recs = ExtractRecords(src);
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_EQ(recs[0].fields.size(), 4u);
  EXPECT_FALSE(recs[0].fields[0].is_private);
  EXPECT_TRUE(recs[0].fields[1].is_static);
  EXPECT_TRUE(recs[0].fields[2].is_mutable);
  EXPECT_TRUE(recs[0].fields[2].is_private);
  EXPECT_TRUE(recs[0].fields[3].is_mutable);
  EXPECT_EQ(recs[0].fields[3].init, "= false");
}

TEST(ExtractRecordsTest, QualifiesNestedRecordsAndSkipsTheirMembers) {
  Source src("t.cc",
             "struct Outer {\n"
             "  struct Inner {\n"
             "    int depth = 0;\n"
             "  };\n"
             "  Inner inner;\n"
             "  int top = 1;\n"
             "};\n",
             "tool");
  const std::vector<RecordDef> recs = ExtractRecords(src);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "Outer");
  ASSERT_EQ(recs[0].fields.size(), 2u);
  EXPECT_EQ(recs[0].fields[0].name, "inner");
  EXPECT_EQ(recs[0].fields[1].name, "top");
  EXPECT_EQ(recs[1].name, "Outer::Inner");
  ASSERT_EQ(recs[1].fields.size(), 1u);
  EXPECT_EQ(recs[1].fields[0].name, "depth");
}

TEST(ExtractRecordsTest, ExtractsScopedEnumsWithEnumerators) {
  Source src("t.cc",
             "enum class TxKind : uint8_t {\n"
             "  kTransfer = 0,\n"
             "  kDeploy = 1,\n"
             "  kCall,\n"
             "};\n",
             "tool");
  const std::vector<RecordDef> recs = ExtractRecords(src);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].name, "TxKind");
  EXPECT_EQ(recs[0].kind, "enum");
  ASSERT_EQ(recs[0].fields.size(), 3u);
  EXPECT_EQ(recs[0].fields[0].name, "kTransfer");
  EXPECT_EQ(recs[0].fields[0].init, "= 0");
  EXPECT_EQ(recs[0].fields[2].name, "kCall");
  EXPECT_EQ(recs[0].fields[2].init, "");
}

TEST(ExtractRecordsTest, SkipsMethodsCtorsAndNonFieldDeclarations) {
  Source src("t.cc",
             "class Pool {\n"
             " public:\n"
             "  Pool(size_t n, Config c)\n"
             "      : threads_(n), config_{std::move(c)} {\n"
             "    Start();\n"
             "  }\n"
             "  ~Pool();\n"
             "  using Map = std::map<int, int>;\n"
             "  friend class Inspector;\n"
             "  Status Add(const Tx& tx);\n"
             "  int Size() const { return n_; }\n"
             " private:\n"
             "  size_t n_ = 0;\n"
             "  std::function<void(int)> on_drop_;\n"
             "};\n",
             "tool");
  const std::vector<RecordDef> recs = ExtractRecords(src);
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_EQ(recs[0].fields.size(), 2u);
  EXPECT_EQ(recs[0].fields[0].name, "n_");
  EXPECT_EQ(recs[0].fields[1].name, "on_drop_");
  EXPECT_EQ(recs[0].fields[1].type, "std::function<void(int)>");
}

TEST(ExtractRecordsTest, ForwardDeclarationsAndTemplatesDoNotConfuse) {
  Source src("t.cc",
             "struct Fwd;\n"
             "template <class T>\n"
             "struct Holder {\n"
             "  T item;\n"
             "};\n",
             "tool");
  const std::vector<RecordDef> recs = ExtractRecords(src);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].name, "Holder");
  ASSERT_EQ(recs[0].fields.size(), 1u);
  EXPECT_EQ(recs[0].fields[0].name, "item");
}

// ------------------------------ Reports ---------------------------------

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The JSON schema is an interface to CI artifact consumers; pin the
// exact bytes against a golden fixture.
TEST(WriteReportTest, MatchesGoldenFixture) {
  std::vector<Finding> findings;
  Finding a;
  a.file = "src/core/example.cc";
  a.line = 12;
  a.rule = "wall-clock";
  a.snippet = "auto t = std::time(nullptr);";
  a.suppressed = false;
  Finding b;
  b.file = "src/net/\"quoted\".h";
  b.line = 3;
  b.rule = "stale-waiver";
  b.snippet = "allow(std-rand) suppresses no finding: int x;";
  b.suppressed = true;
  Finding c;
  c.file = "src/chain/ledger.cc";
  c.line = 140;
  c.rule = "consensus-reaches-nondet";
  c.snippet = "Block Ledger::BuildBlock(...) {";
  c.suppressed = false;
  c.chain =
      "Ledger::BuildBlock (src/chain/ledger.cc:140) → "
      "PackCandidates (src/chain/ledger.cc:95) → "
      "system_clock [nondet:wall-clock] (src/chain/ledger.cc:97)";
  findings.push_back(a);
  findings.push_back(b);
  findings.push_back(c);

  const std::string path = ::testing::TempDir() + "/liblint_report.json";
  ASSERT_TRUE(WriteReport(path, "testtool", findings, 7, 2));
  EXPECT_EQ(ReadFile(path),
            ReadFile(std::string(LIBLINT_TESTDATA_DIR) +
                     "/golden_report.json"));
  std::remove(path.c_str());
}

TEST(WriteReportTest, EmptyFindingsStillWellFormed) {
  const std::string path = ::testing::TempDir() + "/liblint_empty.json";
  ASSERT_TRUE(WriteReport(path, "testtool", {}, 0, 0));
  const std::string report = ReadFile(path);
  EXPECT_NE(report.find("\"findings\": []"), std::string::npos);
  EXPECT_NE(report.find("\"tool\": \"testtool\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace liblint
