#ifndef SHARDCHAIN_TOOLS_LIBLINT_LIBLINT_H_
#define SHARDCHAIN_TOOLS_LIBLINT_LIBLINT_H_

// liblint — the shared machinery behind the repo's token-level linters
// (tools/detlint, tools/parlint, tools/flowlint). Each tool is a rule
// table plus a scan callback (per-file, or whole-program for the
// interprocedural pack); everything else — file walking, comment and
// string-literal stripping, inline `<tool>:allow(...)` waivers,
// function/call-site extraction, JSON and SARIF reports, stale-waiver
// checking, findings/exit-code plumbing — lives here so a lexer fix or
// a driver feature lands in every tool at once (DESIGN.md §11).
//
// The scanners are heuristic, text-level checkers, not compiler
// plugins: they operate on a blanked copy of the source (comments and
// literals replaced by spaces, offsets preserved) and err on the side
// of flagging; intentional uses carry inline waivers of the form
//
//     // <tool>:allow(<rule>[,<rule>...]): optional justification
//
// on the offending line or the line directly above it.

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace liblint {

// ----------------------------- Findings ---------------------------------

struct Finding {
  std::string file;  // As given (relative to --root when provided).
  size_t line = 0;   // 1-based.
  std::string rule;
  std::string snippet;
  bool suppressed = false;
  // Interprocedural findings carry the full call chain from the
  // offending entry point to the seed ("BuildBlock (f.cc:10) →
  // PackCandidates (f.cc:5) → system_clock [nondet:wall-clock]
  // (f.cc:7)"). Empty for single-site findings; emitted into the JSON
  // and SARIF reports only when non-empty.
  std::string chain;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

// Driver-level rule emitted by --check-waivers: an allow() entry that
// suppresses zero findings. Never suppressible itself.
inline constexpr char kStaleWaiverRule[] = "stale-waiver";

// --------------------------- Text utilities -----------------------------

bool IsIdentChar(char c);

// True if s[pos..] starts with `token` on identifier boundaries.
bool TokenAt(const std::string& s, size_t pos, const std::string& token);

// Matches the closing delimiter of a balanced pair opened at `open`
// (which must index '<' / '(' / '{'). Returns npos when unbalanced.
// MatchAngle additionally bails at ';' or '{' since a stray less-than
// never closes.
size_t MatchAngle(const std::string& s, size_t open);
size_t MatchParen(const std::string& s, size_t open);
size_t MatchBrace(const std::string& s, size_t open);

// ------------------------- Preprocessed source --------------------------

// A file's content with comments and string/char literals blanked out
// (offsets preserved), plus per-line suppression info extracted from
// the comments before blanking. `tool` names the waiver tag scanned
// for: tool "detlint" recognises `detlint:allow(...)`.
class Source {
 public:
  Source(std::string path, std::string raw, std::string tool);

  const std::string& path() const { return path_; }
  const std::string& code() const { return code_; }
  const std::string& raw() const { return raw_; }

  size_t LineOf(size_t offset) const;       // 1-based.
  std::string LineText(size_t line) const;  // 1-based, trimmed.

  // True when `rule` is waived on `line` (same line or the one above).
  bool Suppressed(size_t line, const std::string& rule) const;

  // All allow() entries harvested from comments: line -> rule names
  // (may include "*"). Used by the --check-waivers pass.
  const std::map<size_t, std::set<std::string>>& waivers() const {
    return allow_;
  }

 private:
  void IndexLines();
  bool SuppressedOn(size_t line, const std::string& rule) const;
  void ParseAllow(const std::string& comment, size_t comment_start);
  void StripCommentsAndLiterals();
  void Blank(size_t begin, size_t end);

  std::string path_;
  std::string tag_;   // "<tool>:allow(".
  std::string code_;  // Blanked copy scanned by the rules.
  std::string raw_;   // Original text, for snippets.
  std::vector<size_t> line_starts_;
  std::map<size_t, std::set<std::string>> allow_;  // line -> rules.
};

// Appends a finding at `offset`, resolving line, snippet, and
// suppression against `src`. The chain overload attaches an
// interprocedural call chain to the finding.
void EmitFinding(const Source& src, size_t offset, const std::string& rule,
                 std::vector<Finding>* out);
void EmitFinding(const Source& src, size_t offset, const std::string& rule,
                 const std::string& chain, std::vector<Finding>* out);

// --------------------- Function & call extraction -----------------------
//
// The token-level function index the interprocedural pack (flowlint)
// builds its call graph from. Shared here so detlint/parlint rules can
// reuse the same extraction when they need an enclosing-function or
// callee view instead of re-deriving it per tool.

// A function definition: qualified name and the lexical extent of its
// body. Member functions defined inline inside a `class X { ... }`
// body are qualified with the enclosing class name(s); out-of-line
// definitions keep the qualifier as written ("Ledger::BuildBlock").
// Namespaces do not participate in qualification.
struct FunctionDef {
  std::string name;       // "Ledger::BuildBlock", "RunSelectionGame".
  size_t name_pos = 0;    // Offset of the name's first character.
  size_t body_open = 0;   // Offset of the body '{'.
  size_t body_close = 0;  // Offset of the matching '}'.
};

// All function definitions in `src`, in offset order. Heuristic token
// scan over the blanked code: a '{' whose backward context reads
// `name(params) [specifiers...]` — ascending through constructor
// initializer lists — names a definition; control-flow headers
// (if/for/while/switch/catch), lambdas, and operator overloads are
// skipped.
std::vector<FunctionDef> ExtractFunctions(const Source& src);

// A call site: the callee as written, with tight `::` chains kept
// ("std::chrono::system_clock::now"); member calls record the bare
// member name ("Snapshot"). `offset` indexes the first character of
// the (possibly qualified) name.
struct CallSite {
  std::string callee;
  size_t offset = 0;
};

// Call-shaped tokens inside [begin, end) of `src`'s blanked code: an
// identifier chain followed by '(' (template argument lists between
// name and paren are skipped), minus control/cast keywords. Variable
// initializations `T name(args)` surface `name` too — callers resolve
// against a function index, so unresolvable names are cheap noise in
// the over-approximating direction.
std::vector<CallSite> ExtractCallSites(const Source& src, size_t begin,
                                       size_t end);

// ------------------------- Record extraction ----------------------------
//
// The token-level struct/class/enum index the field-coverage pack
// (codeclint) pairs with the function index: which records exist, what
// members they declare, and where. Like ExtractFunctions this is a
// heuristic scan over the blanked code, not a compiler front end — it
// covers the declaration idioms this repo actually uses (plain members,
// default member initializers, arrays, templates, nested records,
// access specifiers) and skips what it cannot parse.

// One data member of a record.
struct RecordField {
  std::string name;     // "gas_limit", "digest_cache_".
  std::string type;     // Declaration text before the name, trimmed.
  std::string init;     // Default initializer text ("= 0", "{}"), or "".
  size_t name_pos = 0;  // Offset of the name's first character.
  bool is_static = false;
  bool is_mutable = false;
  bool is_private = false;  // Under `private:`/`protected:`.
};

// A record definition: struct, class, or enum. Nested records are
// qualified with the enclosing record name(s) ("Outer::Inner") and
// their members are attributed to the innermost record only. Enums
// list their enumerators as fields (type "", no initializer parsing
// beyond the `= value` text).
struct RecordDef {
  std::string name;       // "Transaction", "UnifiedParameters::Inner".
  std::string kind;       // "struct", "class", or "enum".
  size_t name_pos = 0;    // Offset of the name's first character.
  size_t body_open = 0;   // Offset of the body '{'.
  size_t body_close = 0;  // Offset of the matching '}'.
  std::vector<RecordField> fields;
};

// All record definitions in `src`, in offset order. Member functions,
// using/typedef/friend declarations, static_assert, and nested record
// declarations are not fields; `static` and `mutable` members are kept
// and flagged so callers can apply per-rule policy (codeclint's
// manifest and coverage rules both exempt statics, but keep mutables —
// a mutable member still travels on the wire unless waived).
std::vector<RecordDef> ExtractRecords(const Source& src);

// ------------------------------ Reports ---------------------------------

std::string JsonEscape(const std::string& s);

bool WriteReport(const std::string& path, const std::string& tool,
                 const std::vector<Finding>& findings, size_t files_scanned,
                 size_t unsuppressed);

struct Tool;  // Defined below; WriteSarif needs the rule table.

// SARIF 2.1.0, one run per tool: the driver's rule table (plus the
// driver-level stale-waiver rule) becomes the reporting descriptors,
// each finding becomes a result with a physical location; suppressed
// findings carry an inSource suppression object so SARIF viewers show
// them as waived rather than open. Interprocedural chains ride in the
// result message.
bool WriteSarif(const std::string& path, const Tool& tool,
                const std::vector<Finding>& findings);

// --------------------------- Waiver checking ----------------------------

// Every (line, rule) allow() entry in `src` must have suppressed at
// least one of `file_findings` (findings for this file only); each
// entry that suppressed nothing yields a `stale-waiver` finding. A "*"
// entry is used when any finding sits on its lines.
void CheckWaivers(const Source& src, const std::vector<Finding>& file_findings,
                  std::vector<Finding>* out);

// ------------------------------ Driver ----------------------------------

struct Tool {
  const char* name;     // e.g. "detlint"; also the waiver tag.
  const char* tagline;  // One line for --rules-md's section heading.
  // Optional markdown emitted before this tool's --rules-md section
  // (the first tool in tools/lint_rules.md carries the file header).
  const char* md_preamble = nullptr;
  const RuleInfo* rules = nullptr;
  size_t rule_count = 0;
  // Scans one preprocessed file, appending findings.
  std::function<void(const Source&, std::vector<Finding>*)> scan;
  // Whole-program pass over every loaded file at once — the hook the
  // interprocedural pack uses (call graphs cross file boundaries).
  // Runs after the per-file scan (either may be unset). Findings it
  // appends participate in per-file waiver checking like any other.
  std::function<void(const std::vector<Source>&, std::vector<Finding>*)>
      scan_program;
};

// Shared command-line driver:
//   <tool> [--report <file.json>] [--sarif <file.sarif>] [--root <dir>]
//          [--list-rules] [--rules-md] [--check-waivers] <dir-or-file>...
//
// Directory targets are walked recursively for C++ sources; directories
// named "testdata" are skipped (lint fixtures are test inputs, not
// shipped code — pass a fixture file explicitly to scan it).
//
// Exit codes: 0 = clean (all findings suppressed or none), 1 = usage /
// IO error, 2 = unsuppressed findings present.
int RunLinter(const Tool& tool, int argc, char** argv);

}  // namespace liblint

#endif  // SHARDCHAIN_TOOLS_LIBLINT_LIBLINT_H_
