#ifndef SHARDCHAIN_TOOLS_LIBLINT_LIBLINT_H_
#define SHARDCHAIN_TOOLS_LIBLINT_LIBLINT_H_

// liblint — the shared machinery behind the repo's token-level linters
// (tools/detlint, tools/parlint). Each tool is a rule table plus a
// per-file scan callback; everything else — file walking, comment and
// string-literal stripping, inline `<tool>:allow(...)` waivers, JSON
// reports, stale-waiver checking, findings/exit-code plumbing — lives
// here so a lexer fix or a driver feature lands in both tools at once
// (DESIGN.md §11).
//
// The scanners are heuristic, text-level checkers, not compiler
// plugins: they operate on a blanked copy of the source (comments and
// literals replaced by spaces, offsets preserved) and err on the side
// of flagging; intentional uses carry inline waivers of the form
//
//     // <tool>:allow(<rule>[,<rule>...]): optional justification
//
// on the offending line or the line directly above it.

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace liblint {

// ----------------------------- Findings ---------------------------------

struct Finding {
  std::string file;  // As given (relative to --root when provided).
  size_t line = 0;   // 1-based.
  std::string rule;
  std::string snippet;
  bool suppressed = false;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

// Driver-level rule emitted by --check-waivers: an allow() entry that
// suppresses zero findings. Never suppressible itself.
inline constexpr char kStaleWaiverRule[] = "stale-waiver";

// --------------------------- Text utilities -----------------------------

bool IsIdentChar(char c);

// True if s[pos..] starts with `token` on identifier boundaries.
bool TokenAt(const std::string& s, size_t pos, const std::string& token);

// Matches the closing delimiter of a balanced pair opened at `open`
// (which must index '<' / '(' / '{'). Returns npos when unbalanced.
// MatchAngle additionally bails at ';' or '{' since a stray less-than
// never closes.
size_t MatchAngle(const std::string& s, size_t open);
size_t MatchParen(const std::string& s, size_t open);
size_t MatchBrace(const std::string& s, size_t open);

// ------------------------- Preprocessed source --------------------------

// A file's content with comments and string/char literals blanked out
// (offsets preserved), plus per-line suppression info extracted from
// the comments before blanking. `tool` names the waiver tag scanned
// for: tool "detlint" recognises `detlint:allow(...)`.
class Source {
 public:
  Source(std::string path, std::string raw, std::string tool);

  const std::string& path() const { return path_; }
  const std::string& code() const { return code_; }
  const std::string& raw() const { return raw_; }

  size_t LineOf(size_t offset) const;       // 1-based.
  std::string LineText(size_t line) const;  // 1-based, trimmed.

  // True when `rule` is waived on `line` (same line or the one above).
  bool Suppressed(size_t line, const std::string& rule) const;

  // All allow() entries harvested from comments: line -> rule names
  // (may include "*"). Used by the --check-waivers pass.
  const std::map<size_t, std::set<std::string>>& waivers() const {
    return allow_;
  }

 private:
  void IndexLines();
  bool SuppressedOn(size_t line, const std::string& rule) const;
  void ParseAllow(const std::string& comment, size_t line);
  void StripCommentsAndLiterals();
  void Blank(size_t begin, size_t end);

  std::string path_;
  std::string tag_;   // "<tool>:allow(".
  std::string code_;  // Blanked copy scanned by the rules.
  std::string raw_;   // Original text, for snippets.
  std::vector<size_t> line_starts_;
  std::map<size_t, std::set<std::string>> allow_;  // line -> rules.
};

// Appends a finding at `offset`, resolving line, snippet, and
// suppression against `src`.
void EmitFinding(const Source& src, size_t offset, const std::string& rule,
                 std::vector<Finding>* out);

// ------------------------------ Reports ---------------------------------

std::string JsonEscape(const std::string& s);

bool WriteReport(const std::string& path, const std::string& tool,
                 const std::vector<Finding>& findings, size_t files_scanned,
                 size_t unsuppressed);

// --------------------------- Waiver checking ----------------------------

// Every (line, rule) allow() entry in `src` must have suppressed at
// least one of `file_findings` (findings for this file only); each
// entry that suppressed nothing yields a `stale-waiver` finding. A "*"
// entry is used when any finding sits on its lines.
void CheckWaivers(const Source& src, const std::vector<Finding>& file_findings,
                  std::vector<Finding>* out);

// ------------------------------ Driver ----------------------------------

struct Tool {
  const char* name;     // e.g. "detlint"; also the waiver tag.
  const char* tagline;  // One line for --rules-md's section heading.
  // Optional markdown emitted before this tool's --rules-md section
  // (the first tool in tools/lint_rules.md carries the file header).
  const char* md_preamble = nullptr;
  const RuleInfo* rules = nullptr;
  size_t rule_count = 0;
  // Scans one preprocessed file, appending findings.
  std::function<void(const Source&, std::vector<Finding>*)> scan;
};

// Shared command-line driver:
//   <tool> [--report <file.json>] [--root <dir>] [--list-rules]
//          [--rules-md] [--check-waivers] <dir-or-file>...
//
// Directory targets are walked recursively for C++ sources; directories
// named "testdata" are skipped (lint fixtures are test inputs, not
// shipped code — pass a fixture file explicitly to scan it).
//
// Exit codes: 0 = clean (all findings suppressed or none), 1 = usage /
// IO error, 2 = unsuppressed findings present.
int RunLinter(const Tool& tool, int argc, char** argv);

}  // namespace liblint

#endif  // SHARDCHAIN_TOOLS_LIBLINT_LIBLINT_H_
