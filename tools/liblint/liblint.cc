#include "liblint/liblint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace liblint {

namespace fs = std::filesystem;

// --------------------------- Text utilities -----------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool TokenAt(const std::string& s, size_t pos, const std::string& token) {
  if (s.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1]) && IsIdentChar(token.front())) {
    return false;
  }
  const size_t end = pos + token.size();
  if (end < s.size() && IsIdentChar(token.back()) && IsIdentChar(s[end])) {
    return false;
  }
  return true;
}

size_t MatchAngle(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      if (--depth == 0) return i;
    }
    if (s[i] == ';' || s[i] == '{') return std::string::npos;
  }
  return std::string::npos;
}

namespace {

size_t MatchPair(const std::string& s, size_t open, char lhs, char rhs) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == lhs) ++depth;
    if (s[i] == rhs && --depth == 0) return i;
  }
  return std::string::npos;
}

}  // namespace

size_t MatchParen(const std::string& s, size_t open) {
  return MatchPair(s, open, '(', ')');
}

size_t MatchBrace(const std::string& s, size_t open) {
  return MatchPair(s, open, '{', '}');
}

// ------------------------- Preprocessed source --------------------------

Source::Source(std::string path, std::string raw, std::string tool)
    : path_(std::move(path)),
      tag_(std::move(tool) + ":allow("),
      code_(std::move(raw)) {
  IndexLines();
  StripCommentsAndLiterals();
}

void Source::IndexLines() {
  line_starts_.push_back(0);
  for (size_t i = 0; i < code_.size(); ++i) {
    if (code_[i] == '\n' && i + 1 < code_.size()) {
      line_starts_.push_back(i + 1);
    }
  }
}

size_t Source::LineOf(size_t offset) const {
  // line_starts_ is sorted; find the last start <= offset.
  auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<size_t>(it - line_starts_.begin());  // 1-based.
}

std::string Source::LineText(size_t line) const {
  if (line == 0 || line > line_starts_.size()) return {};
  const size_t begin = line_starts_[line - 1];
  size_t end = line < line_starts_.size() ? line_starts_[line] : raw_.size();
  while (end > begin && (raw_[end - 1] == '\n' || raw_[end - 1] == '\r' ||
                         raw_[end - 1] == ' ' || raw_[end - 1] == '\t')) {
    --end;
  }
  std::string text = raw_.substr(begin, end - begin);
  const size_t first = text.find_first_not_of(" \t");
  return first == std::string::npos ? std::string() : text.substr(first);
}

bool Source::Suppressed(size_t line, const std::string& rule) const {
  return SuppressedOn(line, rule) || SuppressedOn(line - 1, rule);
}

bool Source::SuppressedOn(size_t line, const std::string& rule) const {
  auto it = allow_.find(line);
  if (it == allow_.end()) return false;
  const std::set<std::string>& rules = it->second;
  return rules.count("*") > 0 || rules.count(rule) > 0;
}

namespace {

/// Rule names are identifiers-plus-dashes, or the `*` wildcard. Anything
/// else (e.g. the `...` in prose that merely mentions `tool:allow(...)`)
/// is not a waiver.
bool IsRuleName(const std::string& s) {
  if (s == "*") return true;
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsIdentChar(c) && c != '-') return false;
  }
  return true;
}

}  // namespace

void Source::ParseAllow(const std::string& comment, size_t line) {
  size_t pos = comment.find(tag_);
  while (pos != std::string::npos) {
    // `detlint:allow(` must not match inside e.g. `notdetlint:allow(`.
    if (pos > 0 && IsIdentChar(comment[pos - 1])) {
      pos = comment.find(tag_, pos + 1);
      continue;
    }
    const size_t open = pos + tag_.size();
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string list = comment.substr(open, close - open);
    std::stringstream ss(list);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const size_t a = rule.find_first_not_of(" \t");
      const size_t b = rule.find_last_not_of(" \t");
      if (a == std::string::npos) continue;
      std::string name = rule.substr(a, b - a + 1);
      if (IsRuleName(name)) allow_[line].insert(std::move(name));
    }
    pos = comment.find(tag_, close);
  }
}

void Source::StripCommentsAndLiterals() {
  raw_ = code_;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
  State state = State::kCode;
  size_t token_start = 0;
  std::string raw_delim;  // For R"delim( ... )delim".
  for (size_t i = 0; i < code_.size(); ++i) {
    const char c = code_[i];
    const char next = i + 1 < code_.size() ? code_[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          token_start = i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          token_start = i;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(code_[i - 1]))) {
          const size_t paren = code_.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + code_.substr(i + 2, paren - i - 2) + "\"";
            state = State::kRawString;
            token_start = i;
            i = paren;
          }
        } else if (c == '"') {
          state = State::kString;
          token_start = i;
        } else if (c == '\'' &&
                   !(i > 0 && std::isdigit(
                                  static_cast<unsigned char>(code_[i - 1])))) {
          // Skip digit separators like 1'000'000.
          state = State::kChar;
          token_start = i;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          ParseAllow(code_.substr(token_start, i - token_start),
                     LineOf(token_start));
          Blank(token_start, i);
          state = State::kCode;
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          ParseAllow(code_.substr(token_start, i + 2 - token_start),
                     LineOf(token_start));
          Blank(token_start, i + 2);
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"' || c == '\n') {
          Blank(token_start + 1, i);
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'' || c == '\n') {
          Blank(token_start + 1, i);
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (code_.compare(i, raw_delim.size(), raw_delim) == 0) {
          Blank(token_start + 1, i + raw_delim.size() - 1);
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLine) {
    ParseAllow(code_.substr(token_start), LineOf(token_start));
    Blank(token_start, code_.size());
  }
}

void Source::Blank(size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < code_.size(); ++i) {
    if (code_[i] != '\n') code_[i] = ' ';
  }
}

void EmitFinding(const Source& src, size_t offset, const std::string& rule,
                 std::vector<Finding>* out) {
  const size_t line = src.LineOf(offset);
  Finding f;
  f.file = src.path();
  f.line = line;
  f.rule = rule;
  f.snippet = src.LineText(line);
  f.suppressed = src.Suppressed(line, rule);
  out->push_back(std::move(f));
}

// ------------------------------ Reports ---------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteReport(const std::string& path, const std::string& tool,
                 const std::vector<Finding>& findings, size_t files_scanned,
                 size_t unsuppressed) {
  std::ofstream out(path);
  out << "{\n  \"tool\": \"" << JsonEscape(tool) << "\",\n  \"version\": 1,\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"unsuppressed\": " << unsuppressed << ",\n";
  out << "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << f.rule << "\", \"suppressed\": "
        << (f.suppressed ? "true" : "false") << ", \"snippet\": \""
        << JsonEscape(f.snippet) << "\"}";
  }
  out << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  out.flush();
  return out.good();
}

// --------------------------- Waiver checking ----------------------------

void CheckWaivers(const Source& src, const std::vector<Finding>& file_findings,
                  std::vector<Finding>* out) {
  for (const auto& [line, rules] : src.waivers()) {
    for (const std::string& rule : rules) {
      bool used = false;
      for (const Finding& f : file_findings) {
        // A finding on line L consults waivers on L and L-1.
        if (f.line != line && f.line != line + 1) continue;
        if (rule == "*" || f.rule == rule) {
          used = true;
          break;
        }
      }
      if (!used) {
        Finding f;
        f.file = src.path();
        f.line = line;
        f.rule = kStaleWaiverRule;
        f.snippet = "allow(" + rule + ") suppresses no finding: " +
                    src.LineText(line);
        f.suppressed = false;  // Stale waivers are never waivable.
        out->push_back(std::move(f));
      }
    }
  }
}

// ------------------------------ Driver ----------------------------------

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

int Usage(const Tool& tool) {
  std::cerr << "usage: " << tool.name
            << " [--report <file.json>] [--root <dir>] [--list-rules]\n"
            << "       [--rules-md] [--check-waivers] <dir-or-file>...\n";
  return 1;
}

void PrintRulesMarkdown(const Tool& tool) {
  if (tool.md_preamble != nullptr) std::cout << tool.md_preamble;
  std::cout << "## " << tool.name << " — " << tool.tagline << "\n\n";
  std::cout << "| Rule | Summary |\n|------|---------|\n";
  for (size_t i = 0; i < tool.rule_count; ++i) {
    std::cout << "| `" << tool.rules[i].name << "` | "
              << tool.rules[i].summary << " |\n";
  }
  std::cout << "| `" << kStaleWaiverRule << "` | driver-level "
            << "(`--check-waivers`): a `" << tool.name
            << ":allow()` entry that suppresses zero findings; "
            << "delete the waiver — it is never itself waivable |\n";
  std::cout << "\n";
}

}  // namespace

int RunLinter(const Tool& tool, int argc, char** argv) {
  std::vector<std::string> targets;
  std::string report_path;
  std::string root;
  bool check_waivers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--check-waivers") {
      check_waivers = true;
    } else if (arg == "--list-rules") {
      for (size_t r = 0; r < tool.rule_count; ++r) {
        std::cout << tool.rules[r].name << "\t" << tool.rules[r].summary
                  << "\n";
      }
      return 0;
    } else if (arg == "--rules-md") {
      PrintRulesMarkdown(tool);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(tool);
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) return Usage(tool);

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    const fs::path base = root.empty() ? fs::path(t) : fs::path(root) / t;
    std::error_code ec;
    if (fs::is_directory(base, ec)) {
      for (auto it = fs::recursive_directory_iterator(base, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && it->path().filename() == "testdata") {
          // Fixture inputs for the lint self-tests deliberately contain
          // hazards; they are scanned by passing the file explicitly.
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && HasSourceExtension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
    } else {
      std::cerr << tool.name << ": cannot read " << base << "\n";
      return 1;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << tool.name << ": cannot open " << file << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string shown = file.string();
    if (!root.empty()) {
      const std::string prefix = (fs::path(root) / "").string();
      if (shown.rfind(prefix, 0) == 0) shown = shown.substr(prefix.size());
    }
    Source src(shown, buffer.str(), tool.name);
    const size_t first_finding = findings.size();
    tool.scan(src, &findings);
    if (check_waivers) {
      // Stale-waiver pass sees only this file's scan findings.
      const std::vector<Finding> file_findings(
          findings.begin() + static_cast<ptrdiff_t>(first_finding),
          findings.end());
      CheckWaivers(src, file_findings, &findings);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  size_t unsuppressed = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++unsuppressed;
  }
  if (!report_path.empty() &&
      !WriteReport(report_path, tool.name, findings, files.size(),
                   unsuppressed)) {
    std::cerr << tool.name << ": cannot write report to \"" << report_path
              << "\"\n";
    return 1;
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": "
              << (f.suppressed ? "allowed" : "error") << " [" << f.rule
              << "] " << f.snippet << "\n";
  }
  std::cout << tool.name << ": " << files.size() << " files, "
            << findings.size() << " findings, " << unsuppressed
            << " unsuppressed\n";
  return unsuppressed == 0 ? 0 : 2;
}

}  // namespace liblint
