#include "liblint/liblint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace liblint {

namespace fs = std::filesystem;

// --------------------------- Text utilities -----------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool TokenAt(const std::string& s, size_t pos, const std::string& token) {
  if (s.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1]) && IsIdentChar(token.front())) {
    return false;
  }
  const size_t end = pos + token.size();
  if (end < s.size() && IsIdentChar(token.back()) && IsIdentChar(s[end])) {
    return false;
  }
  return true;
}

size_t MatchAngle(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      if (--depth == 0) return i;
    }
    if (s[i] == ';' || s[i] == '{') return std::string::npos;
  }
  return std::string::npos;
}

namespace {

size_t MatchPair(const std::string& s, size_t open, char lhs, char rhs) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == lhs) ++depth;
    if (s[i] == rhs && --depth == 0) return i;
  }
  return std::string::npos;
}

}  // namespace

size_t MatchParen(const std::string& s, size_t open) {
  return MatchPair(s, open, '(', ')');
}

size_t MatchBrace(const std::string& s, size_t open) {
  return MatchPair(s, open, '{', '}');
}

// ------------------------- Preprocessed source --------------------------

Source::Source(std::string path, std::string raw, std::string tool)
    : path_(std::move(path)),
      tag_(std::move(tool) + ":allow("),
      code_(std::move(raw)) {
  IndexLines();
  StripCommentsAndLiterals();
}

void Source::IndexLines() {
  line_starts_.push_back(0);
  for (size_t i = 0; i < code_.size(); ++i) {
    if (code_[i] == '\n' && i + 1 < code_.size()) {
      line_starts_.push_back(i + 1);
    }
  }
}

size_t Source::LineOf(size_t offset) const {
  // line_starts_ is sorted; find the last start <= offset.
  auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<size_t>(it - line_starts_.begin());  // 1-based.
}

std::string Source::LineText(size_t line) const {
  if (line == 0 || line > line_starts_.size()) return {};
  const size_t begin = line_starts_[line - 1];
  size_t end = line < line_starts_.size() ? line_starts_[line] : raw_.size();
  while (end > begin && (raw_[end - 1] == '\n' || raw_[end - 1] == '\r' ||
                         raw_[end - 1] == ' ' || raw_[end - 1] == '\t')) {
    --end;
  }
  std::string text = raw_.substr(begin, end - begin);
  const size_t first = text.find_first_not_of(" \t");
  return first == std::string::npos ? std::string() : text.substr(first);
}

bool Source::Suppressed(size_t line, const std::string& rule) const {
  return SuppressedOn(line, rule) || SuppressedOn(line - 1, rule);
}

bool Source::SuppressedOn(size_t line, const std::string& rule) const {
  auto it = allow_.find(line);
  if (it == allow_.end()) return false;
  const std::set<std::string>& rules = it->second;
  return rules.count("*") > 0 || rules.count(rule) > 0;
}

namespace {

/// Rule names are identifiers-plus-dashes, or the `*` wildcard. Anything
/// else (e.g. the `...` in prose that merely mentions `tool:allow(...)`)
/// is not a waiver.
bool IsRuleName(const std::string& s) {
  if (s == "*") return true;
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsIdentChar(c) && c != '-') return false;
  }
  return true;
}

}  // namespace

void Source::ParseAllow(const std::string& comment, size_t comment_start) {
  size_t pos = comment.find(tag_);
  while (pos != std::string::npos) {
    // `detlint:allow(` must not match inside e.g. `notdetlint:allow(`.
    if (pos > 0 && IsIdentChar(comment[pos - 1])) {
      pos = comment.find(tag_, pos + 1);
      continue;
    }
    const size_t open = pos + tag_.size();
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    // The waiver registers on the line the tag sits on — which, in a
    // multi-line block comment or a backslash-continued line comment,
    // may be later than the comment's first line.
    const size_t line = LineOf(comment_start + pos);
    std::string list = comment.substr(open, close - open);
    std::stringstream ss(list);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const size_t a = rule.find_first_not_of(" \t");
      const size_t b = rule.find_last_not_of(" \t");
      if (a == std::string::npos) continue;
      std::string name = rule.substr(a, b - a + 1);
      if (IsRuleName(name)) allow_[line].insert(std::move(name));
    }
    pos = comment.find(tag_, close);
  }
}

void Source::StripCommentsAndLiterals() {
  raw_ = code_;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
  State state = State::kCode;
  size_t token_start = 0;
  std::string raw_delim;  // For R"delim( ... )delim".
  for (size_t i = 0; i < code_.size(); ++i) {
    const char c = code_[i];
    const char next = i + 1 < code_.size() ? code_[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          token_start = i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          token_start = i;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(code_[i - 1]))) {
          const size_t paren = code_.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + code_.substr(i + 2, paren - i - 2) + "\"";
            state = State::kRawString;
            token_start = i;
            i = paren;
          }
        } else if (c == '"') {
          state = State::kString;
          token_start = i;
        } else if (c == '\'' &&
                   !(i > 0 && std::isdigit(
                                  static_cast<unsigned char>(code_[i - 1])))) {
          // Skip digit separators like 1'000'000.
          state = State::kChar;
          token_start = i;
        }
        break;
      case State::kLine: {
        if (c != '\n') break;
        // A `//` comment whose line ends in a backslash logically
        // continues onto the next physical line ([lex.phases] splicing)
        // — the continuation is still comment text, so blanking must
        // not stop at this newline.
        size_t tail = i;
        while (tail > token_start && code_[tail - 1] == '\r') --tail;
        if (tail > token_start && code_[tail - 1] == '\\') break;
        ParseAllow(code_.substr(token_start, i - token_start), token_start);
        Blank(token_start, i);
        state = State::kCode;
        break;
      }
      case State::kBlock:
        if (c == '*' && next == '/') {
          ParseAllow(code_.substr(token_start, i + 2 - token_start),
                     token_start);
          Blank(token_start, i + 2);
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"' || c == '\n') {
          Blank(token_start + 1, i);
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'' || c == '\n') {
          Blank(token_start + 1, i);
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (code_.compare(i, raw_delim.size(), raw_delim) == 0) {
          Blank(token_start + 1, i + raw_delim.size() - 1);
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLine) {
    ParseAllow(code_.substr(token_start), token_start);
    Blank(token_start, code_.size());
  }
}

void Source::Blank(size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < code_.size(); ++i) {
    if (code_[i] != '\n') code_[i] = ' ';
  }
}

void EmitFinding(const Source& src, size_t offset, const std::string& rule,
                 std::vector<Finding>* out) {
  const size_t line = src.LineOf(offset);
  Finding f;
  f.file = src.path();
  f.line = line;
  f.rule = rule;
  f.snippet = src.LineText(line);
  f.suppressed = src.Suppressed(line, rule);
  out->push_back(std::move(f));
}

void EmitFinding(const Source& src, size_t offset, const std::string& rule,
                 const std::string& chain, std::vector<Finding>* out) {
  EmitFinding(src, offset, rule, out);
  out->back().chain = chain;
}

// --------------------- Function & call extraction -----------------------

namespace {

size_t SkipWsForward(const std::string& s, size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

// Last non-whitespace position strictly before `pos`, or npos.
size_t PrevNonWsAt(const std::string& s, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return pos;
  }
  return std::string::npos;
}

// Identifier ending at `end` (exclusive); empty if none.
std::string IdentBefore(const std::string& s, size_t end) {
  size_t begin = end;
  while (begin > 0 && IsIdentChar(s[begin - 1])) --begin;
  return s.substr(begin, end - begin);
}

// Matches backward from `close` (indexing ')' or '}') to its opener.
size_t MatchBackward(const std::string& s, size_t close, char lhs, char rhs) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (s[i] == rhs) ++depth;
    if (s[i] == lhs && --depth == 0) return i;
  }
  return std::string::npos;
}

// Reads the (possibly ::-qualified) name ending at `end` (exclusive):
// "BuildBlock", "Ledger::BuildBlock", "Foo::~Foo". Empty when the text
// before `end` is not a name. `begin_out` receives the start offset.
std::string QualifiedNameBefore(const std::string& s, size_t end,
                                size_t* begin_out) {
  size_t b = end;
  while (b > 0 && IsIdentChar(s[b - 1])) --b;
  if (b == end) return {};
  if (b > 0 && s[b - 1] == '~') --b;
  while (b >= 2 && s[b - 1] == ':' && s[b - 2] == ':') {
    size_t nb = b - 2;
    const size_t ne = nb;
    while (nb > 0 && IsIdentChar(s[nb - 1])) --nb;
    if (nb == ne) break;  // Leading `::` (global qualifier): stop.
    b = nb;
  }
  *begin_out = b;
  return s.substr(b, end - b);
}

std::string LastComponent(const std::string& qualified) {
  const size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

// class/struct body extents, innermost resolvable by extent size; used
// to qualify inline member definitions.
struct ClassScope {
  std::string name;
  size_t open;
  size_t close;
};

std::vector<ClassScope> CollectClassScopes(const std::string& code) {
  std::vector<ClassScope> scopes;
  for (const char* kw : {"class", "struct"}) {
    const std::string key = kw;
    size_t pos = 0;
    while ((pos = code.find(key, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, key)) {
        pos += key.size();
        continue;
      }
      size_t i = SkipWsForward(code, pos + key.size());
      size_t name_end = i;
      while (name_end < code.size() && IsIdentChar(code[name_end])) {
        ++name_end;
      }
      if (name_end == i) {  // Anonymous — nothing to qualify with.
        pos += key.size();
        continue;
      }
      const std::string name = code.substr(i, name_end - i);
      // Body '{' before any ';' (otherwise: forward declaration, or a
      // `struct X* p;` style mention).
      size_t j = name_end;
      while (j < code.size() && code[j] != '{' && code[j] != ';') ++j;
      if (j < code.size() && code[j] == '{') {
        const size_t close = MatchBrace(code, j);
        if (close != std::string::npos) scopes.push_back({name, j, close});
      }
      pos = name_end;
    }
  }
  return scopes;
}

bool IsFunctionNameKeyword(const std::string& name) {
  static const std::set<std::string> kNot = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "decltype", "operator"};
  return kNot.count(name) > 0;
}

}  // namespace

std::vector<FunctionDef> ExtractFunctions(const Source& src) {
  const std::string& code = src.code();
  const std::vector<ClassScope> classes = CollectClassScopes(code);
  std::vector<FunctionDef> out;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '{') continue;
    const size_t body_close = MatchBrace(code, i);
    if (body_close == std::string::npos) continue;

    // Backward over trailing specifiers (`) const noexcept {`) to the
    // ')' that must close either the parameter list or the last item
    // of a constructor initializer list.
    size_t at = PrevNonWsAt(code, i);
    bool plausible = true;
    while (at != std::string::npos && IsIdentChar(code[at])) {
      static const std::set<std::string> kSpecifiers = {
          "const", "noexcept", "override", "final", "mutable"};
      const std::string ident = IdentBefore(code, at + 1);
      if (kSpecifiers.count(ident) == 0) {
        plausible = false;
        break;
      }
      at = PrevNonWsAt(code, at + 1 - ident.size());
    }
    // A '}' is also admissible: the last ctor-initializer item may be
    // brace-initialized (`: a_(x), b_{y} {`). The hop loop below then
    // requires the chain to end at a real '(' parameter list.
    if (!plausible || at == std::string::npos ||
        (code[at] != ')' && code[at] != '}')) {
      continue;
    }

    // Hop backward through ctor-initializer items (`: a_(x), b_{y}`)
    // until the name before the parameter list.
    std::string name;
    size_t name_pos = 0;
    size_t item_close = at;
    for (int guard = 0; guard < 64; ++guard) {
      const size_t open =
          code[item_close] == ')'
              ? MatchBackward(code, item_close, '(', ')')
              : MatchBackward(code, item_close, '{', '}');
      if (open == std::string::npos) break;
      const size_t p = PrevNonWsAt(code, open);
      if (p == std::string::npos || code[p] == ']' ||
          !IsIdentChar(code[p])) {
        break;  // Lambda or expression — not a definition.
      }
      size_t nb = 0;
      const std::string candidate = QualifiedNameBefore(code, p + 1, &nb);
      if (candidate.empty() ||
          IsFunctionNameKeyword(LastComponent(candidate))) {
        break;
      }
      const size_t q = PrevNonWsAt(code, nb);
      const bool after_comma = q != std::string::npos && code[q] == ',';
      const bool after_init_colon =
          q != std::string::npos && code[q] == ':' &&
          (q == 0 || code[q - 1] != ':') &&
          IdentBefore(code, q) != "public" &&
          IdentBefore(code, q) != "protected" &&
          IdentBefore(code, q) != "private";
      if (after_comma || after_init_colon) {
        // `candidate` was an initializer item; the previous ')'/'}' is
        // one more item (after ',') or the parameter list (after ':').
        const size_t r = PrevNonWsAt(code, q);
        if (r == std::string::npos ||
            (code[r] != ')' && code[r] != '}')) {
          break;
        }
        item_close = r;
        continue;
      }
      if (q != std::string::npos && IsIdentChar(code[q]) &&
          IdentBefore(code, q + 1) == "operator") {
        break;  // Conversion operator: `operator bool() {`.
      }
      if (code[item_close] != ')') {
        break;  // `ident{...} {` with no initializer list: not a def.
      }
      name = candidate;
      name_pos = nb;
      break;
    }
    if (name.empty()) continue;

    // Qualify inline member definitions with their enclosing class
    // scopes, innermost last-prepended.
    if (name.find("::") == std::string::npos) {
      std::vector<const ClassScope*> enclosing;
      for (const ClassScope& c : classes) {
        if (c.open < name_pos && name_pos < c.close) {
          enclosing.push_back(&c);
        }
      }
      std::sort(enclosing.begin(), enclosing.end(),
                [](const ClassScope* a, const ClassScope* b) {
                  return a->close - a->open < b->close - b->open;
                });
      for (const ClassScope* c : enclosing) {
        name = c->name + "::" + name;
      }
    }

    FunctionDef fn;
    fn.name = std::move(name);
    fn.name_pos = name_pos;
    fn.body_open = i;
    fn.body_close = body_close;
    out.push_back(std::move(fn));
  }
  return out;
}

std::vector<CallSite> ExtractCallSites(const Source& src, size_t begin,
                                       size_t end) {
  const std::string& code = src.code();
  std::vector<CallSite> out;
  end = std::min(end, code.size());
  size_t i = begin;
  while (i < end) {
    const char c = code[i];
    if (!IsIdentChar(c) ||
        std::isdigit(static_cast<unsigned char>(c)) ||
        (i > 0 && IsIdentChar(code[i - 1]))) {
      ++i;
      continue;
    }
    // Start of an identifier chain; consume `A::B::C` with tight `::`.
    const size_t chain_start = i;
    std::string chain;
    size_t j = i;
    while (true) {
      size_t e = j;
      while (e < code.size() && IsIdentChar(code[e])) ++e;
      chain.append(code, j, e - j);
      if (e + 2 < code.size() && code[e] == ':' && code[e + 1] == ':' &&
          IsIdentChar(code[e + 2])) {
        chain += "::";
        j = e + 2;
      } else {
        j = e;
        break;
      }
    }
    // Optional template argument list between name and '('.
    size_t after = SkipWsForward(code, j);
    if (after < code.size() && code[after] == '<') {
      const size_t close = MatchAngle(code, after);
      if (close != std::string::npos && close < end) {
        after = SkipWsForward(code, close + 1);
      }
    }
    if (after < end && code[after] == '(') {
      static const std::set<std::string> kNotCalls = {
          "if",         "for",
          "while",      "switch",
          "catch",      "return",
          "sizeof",     "alignof",
          "decltype",   "static_assert",
          "static_cast", "dynamic_cast",
          "reinterpret_cast", "const_cast",
          "new",        "delete",
          "throw",      "defined",
          "assert"};
      if (kNotCalls.count(LastComponent(chain)) == 0) {
        out.push_back({std::move(chain), chain_start});
      }
    }
    i = j;
  }
  return out;
}

// ------------------------- Record extraction ----------------------------

namespace {

// A record candidate before nesting qualification and deduplication.
struct RawRecord {
  std::string name;
  std::string kind;  // "struct", "class", "enum".
  size_t name_pos = 0;
  size_t body_open = 0;
  size_t body_close = 0;
};

// Collects every `class/struct/enum Name ... {` with a body. The scan
// is per-keyword, so `enum class E {` is found by both the enum and
// the class pass, and `template <class T> struct S {` yields a bogus
// "T" candidate whose forward scan lands on S's body — both collapse
// in the dedup below (same body_open: prefer the enum kind, then the
// name closest to the brace).
std::vector<RawRecord> CollectRawRecords(const std::string& code) {
  std::vector<RawRecord> out;
  for (const char* kw : {"enum", "class", "struct"}) {
    const std::string key = kw;
    size_t pos = 0;
    while ((pos = code.find(key, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, key)) {
        pos += key.size();
        continue;
      }
      size_t i = SkipWsForward(code, pos + key.size());
      if (key == "enum") {
        // `enum class E` / `enum struct E`: the scoped-enum keyword.
        for (const char* scoped : {"class", "struct"}) {
          if (TokenAt(code, i, scoped)) {
            i = SkipWsForward(code, i + std::string(scoped).size());
            break;
          }
        }
      }
      size_t name_end = i;
      while (name_end < code.size() && IsIdentChar(code[name_end])) {
        ++name_end;
      }
      if (name_end == i) {  // Anonymous record: nothing to pair with.
        pos += key.size();
        continue;
      }
      const std::string name = code.substr(i, name_end - i);
      // Body '{' before any ';' (otherwise: forward declaration or a
      // `struct X* p;` style mention).
      size_t j = name_end;
      while (j < code.size() && code[j] != '{' && code[j] != ';') ++j;
      if (j < code.size() && code[j] == '{') {
        const size_t close = MatchBrace(code, j);
        if (close != std::string::npos) {
          out.push_back({name, key, i, j, close});
        }
      }
      pos = name_end;
    }
  }
  // Dedup by body: prefer enums (so `enum class E` is an enum, not a
  // class), then the candidate whose name sits closest to the brace
  // (so `template <class T> struct S` keeps S, not T).
  std::sort(out.begin(), out.end(), [](const RawRecord& a,
                                       const RawRecord& b) {
    if (a.body_open != b.body_open) return a.body_open < b.body_open;
    const bool ae = a.kind == "enum", be = b.kind == "enum";
    if (ae != be) return ae;
    return a.name_pos > b.name_pos;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const RawRecord& a, const RawRecord& b) {
                          return a.body_open == b.body_open;
                        }),
            out.end());
  return out;
}

bool IsCppKeywordName(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "const",   "constexpr", "static",  "mutable", "inline",  "virtual",
      "struct",  "class",     "enum",    "union",   "operator", "return",
      "void",    "true",      "false",   "default", "delete",  "this",
      "public",  "private",   "protected"};
  return kKeywords.count(s) > 0;
}

// Parses one member-declaration statement (code[begin, end), already
// known to contain no function parameter list, method body, or nested
// record). Appends a field when the statement reads `specifiers type
// name [init]`.
void ParseFieldStatement(const std::string& code, size_t begin, size_t end,
                         bool in_private, std::vector<RecordField>* out) {
  size_t b = SkipWsForward(code, begin);
  if (b >= end) return;
  // Leading declaration specifiers; `const` stays in the type text.
  RecordField field;
  field.is_private = in_private;
  while (b < end) {
    if (TokenAt(code, b, "static")) {
      field.is_static = true;
      b = SkipWsForward(code, b + 6);
    } else if (TokenAt(code, b, "mutable")) {
      field.is_mutable = true;
      b = SkipWsForward(code, b + 7);
    } else if (TokenAt(code, b, "inline")) {
      b = SkipWsForward(code, b + 6);
    } else if (TokenAt(code, b, "constexpr")) {
      b = SkipWsForward(code, b + 9);
    } else {
      break;
    }
  }
  static const char* kNotFields[] = {"using",  "typedef",  "friend",
                                     "static_assert", "template", "public",
                                     "private", "protected", "struct",
                                     "class",  "enum",      "union"};
  for (const char* kw : kNotFields) {
    if (TokenAt(code, b, kw)) return;
  }
  // Find the declarator stop: the first depth-0 `=`, `{`, `[`, or
  // single `:` (bit-field), else the statement end. Template argument
  // lists are skipped by angle tracking (safe here: comparison
  // operators only occur in initializers, which are past the stop).
  size_t stop = end;
  std::string stop_kind;
  int angle = 0;
  for (size_t i = b; i < end; ++i) {
    const char c = code[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (angle > 0) continue;
    if (c == '=' || c == '{' || c == '[') {
      stop = i;
      stop_kind = c;
      break;
    }
    if (c == ':' && (i + 1 >= end || code[i + 1] != ':') &&
        (i == 0 || code[i - 1] != ':')) {
      stop = i;
      stop_kind = c;
      break;
    }
  }
  // The field name is the identifier directly before the stop.
  size_t name_end = stop;
  while (name_end > b &&
         std::isspace(static_cast<unsigned char>(code[name_end - 1]))) {
    --name_end;
  }
  size_t name_begin = name_end;
  while (name_begin > b && IsIdentChar(code[name_begin - 1])) --name_begin;
  if (name_begin == name_end) return;
  const std::string name = code.substr(name_begin, name_end - name_begin);
  if (std::isdigit(static_cast<unsigned char>(name[0])) ||
      IsCppKeywordName(name)) {
    return;
  }
  // Type text before the name; empty means this was not a declaration
  // (e.g. a stray expression statement).
  size_t type_end = name_begin;
  while (type_end > b &&
         std::isspace(static_cast<unsigned char>(code[type_end - 1]))) {
    --type_end;
  }
  if (type_end == b) return;
  field.name = name;
  field.name_pos = name_begin;
  field.type = code.substr(b, type_end - b);
  if (stop < end && (stop_kind == "=" || stop_kind == "{")) {
    size_t init_end = end;
    while (init_end > stop &&
           std::isspace(static_cast<unsigned char>(code[init_end - 1]))) {
      --init_end;
    }
    field.init = code.substr(stop, init_end - stop);
  }
  out->push_back(std::move(field));
}

// Enumerators: the body split on depth-0 commas; each item is
// `name [= value]`.
void ParseEnumBody(const std::string& code, const RawRecord& rec,
                   std::vector<RecordField>* out) {
  size_t item_begin = rec.body_open + 1;
  int depth = 0;
  for (size_t i = rec.body_open + 1; i <= rec.body_close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == ']') --depth;
    if ((c == ',' && depth == 0) || i == rec.body_close) {
      size_t b = SkipWsForward(code, item_begin);
      size_t name_end = b;
      while (name_end < i && IsIdentChar(code[name_end])) ++name_end;
      if (name_end > b) {
        RecordField field;
        field.name = code.substr(b, name_end - b);
        field.name_pos = b;
        const size_t eq = code.find('=', name_end);
        if (eq != std::string::npos && eq < i) {
          size_t init_end = i;
          while (init_end > eq && std::isspace(static_cast<unsigned char>(
                                      code[init_end - 1]))) {
            --init_end;
          }
          field.init = code.substr(eq, init_end - eq);
        }
        out->push_back(std::move(field));
      }
      item_begin = i + 1;
    }
  }
}

// Data members of a non-enum record: scan the body at nesting depth 1,
// skipping nested record bodies and function definitions, splitting
// the rest into `;`-terminated statements.
void ParseRecordFields(const std::string& code, const RawRecord& rec,
                       const std::vector<RawRecord>& all,
                       std::vector<RecordField>* out) {
  // Directly and transitively nested record extents are skipped whole;
  // their members belong to the inner record.
  std::vector<std::pair<size_t, size_t>> nested;
  for (const RawRecord& r : all) {
    if (rec.body_open < r.body_open && r.body_close < rec.body_close) {
      nested.emplace_back(r.body_open, r.body_close);
    }
  }
  bool in_private = rec.kind == "class";  // Default access.
  size_t stmt_begin = rec.body_open + 1;
  size_t i = rec.body_open + 1;
  bool saw_eq = false;    // A depth-0 '=' in the current statement.
  bool saw_paren = false;
  int angle = 0;
  auto reset = [&](size_t next) {
    stmt_begin = next;
    saw_eq = false;
    saw_paren = false;
    angle = 0;
  };
  while (i < rec.body_close) {
    const char c = code[i];
    bool is_nested_open = false;
    for (const auto& [open, close] : nested) {
      if (i == open) {
        // Jump past the nested record body and its trailing ';'.
        i = SkipWsForward(code, close + 1);
        if (i < rec.body_close && code[i] == ';') ++i;
        is_nested_open = true;
        break;
      }
    }
    if (is_nested_open) {
      reset(i);
      continue;
    }
    if (!saw_eq) {
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
    }
    if (c == '(' && !saw_eq && angle == 0) {
      // A parameter list: this statement declares a function. Skip to
      // its terminating ';' or past its inline body (tracking nesting
      // so default arguments and ctor-initializers do not end it).
      saw_paren = true;
      const size_t close = MatchParen(code, i);
      if (close == std::string::npos) break;
      size_t j = close + 1;
      while (j < rec.body_close) {
        const char cj = code[j];
        if (cj == '(') {
          // Ctor-initializer item `a_(x)` or a default argument group.
          const size_t pc = MatchParen(code, j);
          if (pc == std::string::npos) break;
          j = pc + 1;
          continue;
        }
        if (cj == '{') {
          // Either a brace-initialized ctor-initializer item `b_{y}`
          // or the inline body. Disambiguate by what follows: a comma
          // continues the initializer list, another brace is the body
          // of an item-terminated list, anything else means this brace
          // WAS the body.
          const size_t bc = MatchBrace(code, j);
          if (bc == std::string::npos) {
            j = rec.body_close;
            break;
          }
          const size_t nx = SkipWsForward(code, bc + 1);
          if (nx < rec.body_close && code[nx] == ',') {
            j = nx + 1;
            continue;
          }
          if (nx < rec.body_close && code[nx] == '{') {
            j = nx;
            continue;
          }
          j = bc + 1;
          if (nx < rec.body_close && code[nx] == ';') j = nx + 1;
          break;
        }
        if (cj == ';') {
          ++j;
          break;
        }
        ++j;
      }
      i = j;
      reset(i);
      continue;
    }
    if (c == '{') {
      // Brace initializer (or a lambda in a default member init):
      // include the whole extent in the statement so inner `;` do not
      // split it.
      const size_t close = MatchBrace(code, i);
      if (close == std::string::npos) break;
      i = close + 1;
      continue;
    }
    if (c == '=' && angle == 0) saw_eq = true;
    if (c == ':' && !saw_eq && angle == 0 &&
        (i + 1 >= rec.body_close || code[i + 1] != ':') &&
        (i == 0 || code[i - 1] != ':')) {
      // Access label? Only when the pending statement is exactly the
      // keyword.
      const size_t b = SkipWsForward(code, stmt_begin);
      const std::string pending =
          b < i ? code.substr(b, i - b) : std::string();
      std::string trimmed = pending;
      while (!trimmed.empty() &&
             std::isspace(static_cast<unsigned char>(trimmed.back()))) {
        trimmed.pop_back();
      }
      if (trimmed == "public") {
        in_private = false;
        ++i;
        reset(i);
        continue;
      }
      if (trimmed == "private" || trimmed == "protected") {
        in_private = true;
        ++i;
        reset(i);
        continue;
      }
    }
    if (c == ';') {
      if (!saw_paren) {
        ParseFieldStatement(code, stmt_begin, i, in_private, out);
      }
      ++i;
      reset(i);
      continue;
    }
    ++i;
  }
}

}  // namespace

std::vector<RecordDef> ExtractRecords(const Source& src) {
  const std::string& code = src.code();
  const std::vector<RawRecord> raw = CollectRawRecords(code);
  std::vector<RecordDef> out;
  out.reserve(raw.size());
  for (const RawRecord& rec : raw) {
    RecordDef def;
    def.kind = rec.kind;
    def.name_pos = rec.name_pos;
    def.body_open = rec.body_open;
    def.body_close = rec.body_close;
    // Qualify with enclosing records, innermost last-prepended.
    def.name = rec.name;
    std::vector<const RawRecord*> enclosing;
    for (const RawRecord& outer : raw) {
      if (outer.body_open < rec.body_open &&
          rec.body_close < outer.body_close) {
        enclosing.push_back(&outer);
      }
    }
    std::sort(enclosing.begin(), enclosing.end(),
              [](const RawRecord* a, const RawRecord* b) {
                return a->body_close - a->body_open <
                       b->body_close - b->body_open;
              });
    for (const RawRecord* outer : enclosing) {
      def.name = outer->name + "::" + def.name;
    }
    if (rec.kind == "enum") {
      ParseEnumBody(code, rec, &def.fields);
    } else {
      ParseRecordFields(code, rec, raw, &def.fields);
    }
    out.push_back(std::move(def));
  }
  return out;
}

// ------------------------------ Reports ---------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteReport(const std::string& path, const std::string& tool,
                 const std::vector<Finding>& findings, size_t files_scanned,
                 size_t unsuppressed) {
  std::ofstream out(path);
  out << "{\n  \"tool\": \"" << JsonEscape(tool) << "\",\n  \"version\": 1,\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"unsuppressed\": " << unsuppressed << ",\n";
  out << "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << f.rule << "\", \"suppressed\": "
        << (f.suppressed ? "true" : "false") << ", \"snippet\": \""
        << JsonEscape(f.snippet) << "\"";
    if (!f.chain.empty()) {
      out << ", \"chain\": \"" << JsonEscape(f.chain) << "\"";
    }
    out << "}";
  }
  out << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  out.flush();
  return out.good();
}

bool WriteSarif(const std::string& path, const Tool& tool,
                const std::vector<Finding>& findings) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"" << JsonEscape(tool.name) << "\",\n"
      << "          \"informationUri\": "
      << "\"tools/lint_rules.md\",\n"
      << "          \"rules\": [";
  for (size_t r = 0; r < tool.rule_count; ++r) {
    out << (r == 0 ? "\n" : ",\n");
    out << "            {\"id\": \"" << JsonEscape(tool.rules[r].name)
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(tool.rules[r].summary) << "\"}}";
  }
  out << (tool.rule_count == 0 ? "" : ",\n")
      << "            {\"id\": \"" << kStaleWaiverRule
      << "\", \"shortDescription\": {\"text\": \"an allow() entry that "
      << "suppresses zero findings; never itself waivable\"}}\n"
      << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::string message = f.snippet;
    if (!f.chain.empty()) message += "; chain: " + f.chain;
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(message)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << JsonEscape(f.file)
        << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]";
    if (f.suppressed) {
      out << ",\n          \"suppressions\": [{\"kind\": \"inSource\"}]";
    }
    out << "\n        }";
  }
  out << (findings.empty() ? "]\n" : "\n      ]\n")
      << "    }\n"
      << "  ]\n"
      << "}\n";
  out.flush();
  return out.good();
}

// --------------------------- Waiver checking ----------------------------

void CheckWaivers(const Source& src, const std::vector<Finding>& file_findings,
                  std::vector<Finding>* out) {
  for (const auto& [line, rules] : src.waivers()) {
    for (const std::string& rule : rules) {
      bool used = false;
      for (const Finding& f : file_findings) {
        // A finding on line L consults waivers on L and L-1.
        if (f.line != line && f.line != line + 1) continue;
        if (rule == "*" || f.rule == rule) {
          used = true;
          break;
        }
      }
      if (!used) {
        Finding f;
        f.file = src.path();
        f.line = line;
        f.rule = kStaleWaiverRule;
        f.snippet = "allow(" + rule + ") suppresses no finding: " +
                    src.LineText(line);
        f.suppressed = false;  // Stale waivers are never waivable.
        out->push_back(std::move(f));
      }
    }
  }
}

// ------------------------------ Driver ----------------------------------

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

int Usage(const Tool& tool) {
  std::cerr << "usage: " << tool.name
            << " [--report <file.json>] [--sarif <file.sarif>] [--root <dir>]\n"
            << "       [--list-rules] [--rules-md] [--check-waivers]"
            << " <dir-or-file>...\n";
  return 1;
}

void PrintRulesMarkdown(const Tool& tool) {
  if (tool.md_preamble != nullptr) std::cout << tool.md_preamble;
  std::cout << "## " << tool.name << " — " << tool.tagline << "\n\n";
  std::cout << "| Rule | Summary |\n|------|---------|\n";
  for (size_t i = 0; i < tool.rule_count; ++i) {
    std::cout << "| `" << tool.rules[i].name << "` | "
              << tool.rules[i].summary << " |\n";
  }
  std::cout << "| `" << kStaleWaiverRule << "` | driver-level "
            << "(`--check-waivers`): a `" << tool.name
            << ":allow()` entry that suppresses zero findings; "
            << "delete the waiver — it is never itself waivable |\n";
  std::cout << "\n";
}

}  // namespace

int RunLinter(const Tool& tool, int argc, char** argv) {
  std::vector<std::string> targets;
  std::string report_path;
  std::string sarif_path;
  std::string root;
  bool check_waivers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--check-waivers") {
      check_waivers = true;
    } else if (arg == "--list-rules") {
      for (size_t r = 0; r < tool.rule_count; ++r) {
        std::cout << tool.rules[r].name << "\t" << tool.rules[r].summary
                  << "\n";
      }
      return 0;
    } else if (arg == "--rules-md") {
      PrintRulesMarkdown(tool);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(tool);
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) return Usage(tool);

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    const fs::path base = root.empty() ? fs::path(t) : fs::path(root) / t;
    std::error_code ec;
    if (fs::is_directory(base, ec)) {
      for (auto it = fs::recursive_directory_iterator(base, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && it->path().filename() == "testdata") {
          // Fixture inputs for the lint self-tests deliberately contain
          // hazards; they are scanned by passing the file explicitly.
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && HasSourceExtension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
    } else {
      std::cerr << tool.name << ": cannot read " << base << "\n";
      return 1;
    }
  }
  std::sort(files.begin(), files.end());

  // Load every file up front: per-file scans see one Source at a time,
  // but the whole-program pass (tool.scan_program) needs all of them —
  // call graphs cross file boundaries.
  std::vector<Source> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << tool.name << ": cannot open " << file << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string shown = file.string();
    if (!root.empty()) {
      const std::string prefix = (fs::path(root) / "").string();
      if (shown.rfind(prefix, 0) == 0) shown = shown.substr(prefix.size());
    }
    sources.emplace_back(shown, buffer.str(), tool.name);
  }

  std::vector<Finding> findings;
  if (tool.scan) {
    for (const Source& src : sources) tool.scan(src, &findings);
  }
  if (tool.scan_program) tool.scan_program(sources, &findings);
  if (check_waivers) {
    // Stale-waiver pass: each file's waivers against each file's
    // findings (scan and scan_program alike — chains attribute to the
    // entry point's file, which is where the waiver must sit).
    for (const Source& src : sources) {
      std::vector<Finding> file_findings;
      for (const Finding& f : findings) {
        if (f.file == src.path()) file_findings.push_back(f);
      }
      CheckWaivers(src, file_findings, &findings);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  size_t unsuppressed = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++unsuppressed;
  }
  if (!report_path.empty() &&
      !WriteReport(report_path, tool.name, findings, files.size(),
                   unsuppressed)) {
    std::cerr << tool.name << ": cannot write report to \"" << report_path
              << "\"\n";
    return 1;
  }
  if (!sarif_path.empty() && !WriteSarif(sarif_path, tool, findings)) {
    std::cerr << tool.name << ": cannot write SARIF to \"" << sarif_path
              << "\"\n";
    return 1;
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": "
              << (f.suppressed ? "allowed" : "error") << " [" << f.rule
              << "] " << f.snippet << "\n";
    if (!f.chain.empty()) std::cout << "  chain: " << f.chain << "\n";
  }
  std::cout << tool.name << ": " << files.size() << " files, "
            << findings.size() << " findings, " << unsuppressed
            << " unsuppressed\n";
  return unsuppressed == 0 ? 0 : 2;
}

}  // namespace liblint
