// flowlint — interprocedural taint analysis of the determinism and
// parallel contracts.
//
// detlint and parlint are lexical, per-file scanners: they cannot see a
// helper that reads the wall clock called three frames below
// Ledger::BuildBlock, or a function invoked from inside a ParallelFor
// body that takes a StateDB snapshot. flowlint closes that gap: it
// builds a token-level function index and call graph over everything it
// is given (liblint's ExtractFunctions/ExtractCallSites), seeds taints
// at nondeterminism sources and contract-relevant effects, propagates
// them to callers with a worklist fixpoint, and reports violations with
// the full call chain (`BuildBlock (f.cc:10) → PackCandidates (f.cc:5)
// → system_clock [nondet:wall-clock] (f.cc:7)`).
//
// Taint labels:
//   nondet:wall-clock       system_clock/steady_clock/time()/clock()
//   nondet:entropy          std::random_device
//   nondet:rand             rand()/srand() (global C RNG)
//   nondet:env              getenv()
//   nondet:hw-threads       hardware_concurrency()
//   nondet:ptr-order        std::map/set keyed on a pointer
//   effect:parallel         ParallelFor/ParallelReduce/ParallelChunks
//   effect:snapshot         member Snapshot()/RevertTo() (and Commit()
//                           when the same body opens a bracket)
//   effect:static-mutation  non-const local static state
//
// In-source annotations (comments, scanned from the raw text):
//   // flowlint: deterministic-root   — consensus entry point; rule 1
//       flags it when any nondet:* taint becomes reachable. The
//       required root set (DESIGN.md §7 entry points) is pinned in
//       kRequiredRoots; rule 3 flags a required root defined without
//       the annotation.
//   // flowlint: contract-barrier     — certified boundary (the §9
//       parallel primitives): taints inside it do NOT propagate to
//       callers. This is what keeps ThreadPool's hardware_concurrency
//       read from tainting every consensus root that fans out.
//
// The per-function taint summary is checked in at
// tools/flowlint/summaries.json and regenerated with
// `--summaries <file> --write-summaries`; rule 4 (taint-summary-drift)
// fails CI when the computed summary and the checked-in one diverge,
// so a review diff shows exactly which functions gained a taint.
//
// Like its siblings this is a heuristic token-level scanner on the
// shared liblint driver, not a compiler plugin: call resolution is an
// over-approximation (an unqualified callee resolves to every function
// with that name), so it errs toward flagging and intentional uses
// carry `// flowlint:allow(<rule>): justification` waivers.
//
// Usage:
//   flowlint [--report <file.json>] [--sarif <file.sarif>]
//            [--root <dir>] [--summaries <file.json>]
//            [--write-summaries] [--list-rules] [--rules-md]
//            [--check-waivers] <dir-or-file>...
//
// Exit codes: 0 = clean, 1 = usage / IO error, 2 = unsuppressed
// findings present.

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "liblint/liblint.h"

namespace {

using liblint::CallSite;
using liblint::EmitFinding;
using liblint::ExtractCallSites;
using liblint::ExtractFunctions;
using liblint::Finding;
using liblint::FunctionDef;
using liblint::IsIdentChar;
using liblint::JsonEscape;
using liblint::MatchAngle;
using liblint::MatchParen;
using liblint::RuleInfo;
using liblint::Source;
using liblint::TokenAt;

constexpr RuleInfo kRules[] = {
    {"consensus-reaches-nondet",
     "a declared deterministic root (// flowlint: deterministic-root) "
     "transitively reaches a nondeterminism source — wall clock, "
     "entropy, global RNG, getenv, hardware_concurrency, or "
     "pointer-keyed ordering; two honest miners would derive different "
     "bytes from the same broadcast (DESIGN.md §7)"},
    {"parallel-body-effects",
     "a function called (transitively) from inside a "
     "ParallelFor/ParallelReduce/ParallelChunks body performs snapshot-"
     "journal ops, nested parallelism, or static mutation; the §9 "
     "contract requires parallel bodies to stay effect-free beyond "
     "their disjoint writes"},
    {"unannotated-root",
     "a consensus entry point (Ledger::BuildBlock, the codec "
     "encode/decode pairs, the games) defined without its "
     "`// flowlint: deterministic-root` annotation; the root set must "
     "be declared in-source so rule 1 audits every entry point"},
    {"taint-summary-drift",
     "the computed per-function taint summary differs from the "
     "checked-in tools/flowlint/summaries.json; not waivable — "
     "regenerate with `--summaries <file> --write-summaries` so the "
     "review diff shows exactly which functions changed"},
};

// The consensus entry points every miner must recompute bit-identically
// from the leader's unified parameters (Sec. IV-C; DESIGN.md §7). Each
// must carry `// flowlint: deterministic-root` at its definition.
constexpr const char* kRequiredRoots[] = {
    "Ledger::BuildBlock",
    "ShardingSystem::ComputeShardSelectionPlans",
    "EncodeUnifiedParameters",
    "DecodeUnifiedParameters",
    "EncodeSelectionPlan",
    "DecodeSelectionPlan",
    "EncodeMergePlan",
    "DecodeMergePlan",
    "RunSelectionGame",
    "RunOneTimeMerge",
    "RunIterativeMerge",
    "RunRandomizedMerge",
    // Churn and migration byte streams (DESIGN.md §12): epoch records,
    // account handoffs, and migration plans are consensus-compared
    // byte-for-byte across miners.
    "EncodeEpochRecord",
    "DecodeEpochRecord",
    "EncodeAccountState",
    "DecodeAccountState",
    "EncodeHandoffRecord",
    "DecodeHandoffRecord",
    "EncodeMigrationPlan",
    "DecodeMigrationPlan",
    // Mempool emission and pipelined block production (DESIGN.md §14):
    // TopByFee feeds every miner's packing decision and the pipeline
    // must emit serial-identical block bytes.
    "TxPool::TopByFee",
    "BlockPipeline::Run",
};

constexpr char kRootAnnotation[] = "flowlint: deterministic-root";
constexpr char kBarrierAnnotation[] = "flowlint: contract-barrier";

// An annotation comment binds to the function whose name starts within
// this many lines below it (covers a return type on its own line).
constexpr size_t kAnnotationMargin = 3;

std::string LastComponent(const std::string& qualified) {
  const size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

// ------------------------------ Analysis --------------------------------

struct Seed {
  std::string taint;
  std::string token;  // What to print in the chain's last hop.
  size_t offset = 0;
};

struct Edge {
  size_t callee = 0;  // Index into fns_.
  size_t offset = 0;  // Call-site offset in the caller's file.
};

struct Fn {
  FunctionDef def;
  size_t src_index = 0;
  bool is_root = false;
  bool is_barrier = false;
  std::vector<Seed> seeds;
  std::vector<Edge> edges;           // In call-site offset order.
  std::set<std::string> taints;      // Seeds ∪ non-barrier callees'.
};

class Analysis {
 public:
  explicit Analysis(const std::vector<Source>& sources)
      : sources_(sources) {}

  void Run() {
    IndexFunctions();
    HarvestAnnotations();
    for (Fn& fn : fns_) SeedTaints(&fn);
    BuildEdges();
    Propagate();
  }

  void EmitRootFindings(std::vector<Finding>* out) const;
  void EmitParallelBodyFindings(std::vector<Finding>* out) const;
  void EmitUnannotatedRootFindings(std::vector<Finding>* out) const;

  // Final taints per function name (union over same-named definitions,
  // non-empty sets only) — the summary rule 4 diffs and writes.
  std::map<std::string, std::set<std::string>> Summaries() const {
    std::map<std::string, std::set<std::string>> out;
    for (const Fn& fn : fns_) {
      if (fn.taints.empty()) continue;
      out[fn.def.name].insert(fn.taints.begin(), fn.taints.end());
    }
    return out;
  }

 private:
  void IndexFunctions() {
    for (size_t s = 0; s < sources_.size(); ++s) {
      for (FunctionDef& def : ExtractFunctions(sources_[s])) {
        Fn fn;
        fn.def = std::move(def);
        fn.src_index = s;
        by_name_[fn.def.name].push_back(fns_.size());
        by_last_[LastComponent(fn.def.name)].push_back(fns_.size());
        fns_.push_back(std::move(fn));
      }
    }
  }

  // `// flowlint: deterministic-root` / `contract-barrier` comments,
  // read from the RAW text (they are comments, blanked in code()).
  void HarvestAnnotations() {
    for (Fn& fn : fns_) {
      const Source& src = sources_[fn.src_index];
      const size_t name_line = src.LineOf(fn.def.name_pos);
      const size_t first =
          name_line > kAnnotationMargin ? name_line - kAnnotationMargin : 1;
      for (size_t line = first; line <= name_line; ++line) {
        const std::string text = src.LineText(line);
        if (text.find(kRootAnnotation) != std::string::npos) {
          fn.is_root = true;
        }
        if (text.find(kBarrierAnnotation) != std::string::npos) {
          fn.is_barrier = true;
        }
      }
    }
  }

  void AddSeed(Fn* fn, const char* taint, const std::string& token,
               size_t offset) {
    fn->seeds.push_back({taint, token, offset});
    fn->taints.insert(taint);
  }

  void SeedTaints(Fn* fn) {
    const std::string& code = sources_[fn->src_index].code();
    const size_t begin = fn->def.body_open + 1;
    const size_t end = fn->def.body_close;

    struct Pattern {
      const char* token;
      const char* taint;
      bool needs_call;  // Must be followed by '('.
    };
    constexpr Pattern kPatterns[] = {
        {"system_clock", "nondet:wall-clock", false},
        {"steady_clock", "nondet:wall-clock", false},
        {"high_resolution_clock", "nondet:wall-clock", false},
        {"time", "nondet:wall-clock", true},
        {"gettimeofday", "nondet:wall-clock", true},
        {"clock", "nondet:wall-clock", true},
        {"random_device", "nondet:entropy", false},
        {"rand", "nondet:rand", true},
        {"srand", "nondet:rand", true},
        {"getenv", "nondet:env", true},
        {"hardware_concurrency", "nondet:hw-threads", false},
        {"ParallelFor", "effect:parallel", true},
        {"ParallelReduce", "effect:parallel", true},
        {"ParallelChunks", "effect:parallel", true},
    };
    for (const Pattern& p : kPatterns) {
      const std::string token = p.token;
      size_t pos = begin;
      while ((pos = code.find(token, pos)) != std::string::npos &&
             pos < end) {
        if (!TokenAt(code, pos, token) ||
            (pos > 0 && code[pos - 1] == '.')) {
          pos += token.size();  // `obj.time` is a member, not libc.
          continue;
        }
        if (p.needs_call) {
          const size_t after = SkipWs(code, pos + token.size());
          if (after >= code.size() || code[after] != '(') {
            pos += token.size();
            continue;
          }
        }
        AddSeed(fn, p.taint, token, pos);
        pos += token.size();
      }
    }

    SeedSnapshotOps(fn, code, begin, end);
    SeedStaticMutation(fn, code, begin, end);
    SeedPointerKeys(fn, code, begin, end);
  }

  // Member Snapshot()/RevertTo() always seed effect:snapshot; Commit()
  // only when the body also opens a bracket (Snapshot or RevertTo), so
  // unrelated Commit methods (a beacon round, a batch writer) do not
  // read as journal ops.
  void SeedSnapshotOps(Fn* fn, const std::string& code, size_t begin,
                       size_t end) {
    bool has_bracket = false;
    std::vector<Seed> commits;
    for (const char* name : {"Snapshot", "RevertTo", "Commit"}) {
      const std::string token = name;
      size_t pos = begin;
      while ((pos = code.find(token, pos)) != std::string::npos &&
             pos < end) {
        const bool dot = pos > 0 && code[pos - 1] == '.';
        const bool arrow =
            pos > 1 && code[pos - 2] == '-' && code[pos - 1] == '>';
        const size_t after = SkipWs(code, pos + token.size());
        if (!TokenAt(code, pos, token) || !(dot || arrow) ||
            after >= code.size() || code[after] != '(') {
          pos += token.size();
          continue;
        }
        if (token == "Commit") {
          commits.push_back({"effect:snapshot", token, pos});
        } else {
          has_bracket = true;
          AddSeed(fn, "effect:snapshot", token, pos);
        }
        pos += token.size();
      }
    }
    if (has_bracket) {
      for (const Seed& s : commits) {
        AddSeed(fn, "effect:snapshot", s.token, s.offset);
      }
    }
  }

  // A non-const local `static` is mutable cross-call state: results
  // depend on invocation history, and under parallelism on the
  // schedule.
  void SeedStaticMutation(Fn* fn, const std::string& code, size_t begin,
                          size_t end) {
    size_t pos = begin;
    while ((pos = code.find("static", pos)) != std::string::npos &&
           pos < end) {
      if (!TokenAt(code, pos, "static")) {
        pos += 6;
        continue;
      }
      const size_t after = SkipWs(code, pos + 6);
      if (!TokenAt(code, after, "const") &&
          !TokenAt(code, after, "constexpr")) {
        AddSeed(fn, "effect:static-mutation", "static", pos);
      }
      pos += 6;
    }
  }

  // std::map/set (and multi variants) keyed on a pointer: iteration
  // order is decided by the allocator, not the data.
  void SeedPointerKeys(Fn* fn, const std::string& code, size_t begin,
                       size_t end) {
    for (const char* type : {"map", "set", "multimap", "multiset"}) {
      const std::string token = type;
      size_t pos = begin;
      while ((pos = code.find(token, pos)) != std::string::npos &&
             pos < end) {
        if (!TokenAt(code, pos, token) ||
            code.find('<', pos) != pos + token.size()) {
          pos += token.size();
          continue;
        }
        const size_t open = pos + token.size();
        const size_t close = MatchAngle(code, open);
        if (close == std::string::npos) {
          pos += token.size();
          continue;
        }
        int depth = 0;
        size_t key_end = close;
        for (size_t i = open; i <= close; ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>') --depth;
          if (code[i] == ',' && depth == 1) {
            key_end = i;
            break;
          }
        }
        std::string key = code.substr(open + 1, key_end - open - 1);
        while (!key.empty() &&
               std::isspace(static_cast<unsigned char>(key.back()))) {
          key.pop_back();
        }
        if (!key.empty() && key.back() == '*') {
          AddSeed(fn, "nondet:ptr-order", token, pos);
        }
        pos = close;
      }
    }
  }

  // Call resolution, over-approximating by design:
  //  - `std::`-qualified callees are leaves (the std library's taints
  //    are modeled by the seed patterns, not by resolution);
  //  - a qualified callee resolves only to exact name matches;
  //  - an unqualified callee from inside class C prefers C's member of
  //    that name, else resolves to EVERY function with that last
  //    component.
  void BuildEdges() {
    for (Fn& fn : fns_) {
      const Source& src = sources_[fn.src_index];
      const std::string class_prefix = ClassPrefix(fn.def.name);
      for (const CallSite& call : ExtractCallSites(
               src, fn.def.body_open + 1, fn.def.body_close)) {
        if (call.callee.rfind("std::", 0) == 0) continue;
        std::vector<size_t> targets;
        if (call.callee.find("::") != std::string::npos) {
          auto it = by_name_.find(call.callee);
          if (it != by_name_.end()) targets = it->second;
        } else {
          if (!class_prefix.empty()) {
            auto it = by_name_.find(class_prefix + "::" + call.callee);
            if (it != by_name_.end()) targets = it->second;
          }
          if (targets.empty()) {
            auto it = by_last_.find(call.callee);
            if (it != by_last_.end()) targets = it->second;
          }
        }
        for (size_t t : targets) {
          fn.edges.push_back({t, call.offset});
        }
      }
    }
  }

  static std::string ClassPrefix(const std::string& name) {
    const size_t sep = name.rfind("::");
    return sep == std::string::npos ? std::string() : name.substr(0, sep);
  }

  // Worklist fixpoint: a caller carries every taint of its non-barrier
  // callees. Monotone over finite sets, so iterate to stability.
  void Propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (Fn& fn : fns_) {
        for (const Edge& e : fn.edges) {
          const Fn& callee = fns_[e.callee];
          if (callee.is_barrier) continue;
          for (const std::string& t : callee.taints) {
            if (fn.taints.insert(t).second) changed = true;
          }
        }
      }
    }
  }

  // ------------------------------ Chains --------------------------------

  std::string Hop(const Fn& fn) const {
    const Source& src = sources_[fn.src_index];
    return fn.def.name + " (" + src.path() + ":" +
           std::to_string(src.LineOf(fn.def.name_pos)) + ")";
  }

  std::string SeedHop(const Fn& fn, const Seed& seed) const {
    const Source& src = sources_[fn.src_index];
    return seed.token + " [" + seed.taint + "] (" + src.path() + ":" +
           std::to_string(src.LineOf(seed.offset)) + ")";
  }

  const Seed* LocalSeed(const Fn& fn, const std::string& taint) const {
    for (const Seed& s : fn.seeds) {
      if (s.taint == taint) return &s;
    }
    return nullptr;
  }

  // Shortest call chain from fns_[start] to a local seed of `taint`,
  // BFS with edges in call-site order (deterministic across runs).
  std::string ChainFor(size_t start, const std::string& taint) const {
    std::deque<size_t> queue{start};
    std::map<size_t, size_t> parent;  // child fn index -> parent.
    std::set<size_t> visited{start};
    while (!queue.empty()) {
      const size_t at = queue.front();
      queue.pop_front();
      if (const Seed* seed = LocalSeed(fns_[at], taint)) {
        std::vector<size_t> path{at};
        while (path.back() != start) path.push_back(parent[path.back()]);
        std::string chain;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          chain += Hop(fns_[*it]) + " → ";
        }
        return chain + SeedHop(fns_[at], *seed);
      }
      for (const Edge& e : fns_[at].edges) {
        const Fn& callee = fns_[e.callee];
        if (callee.is_barrier || callee.taints.count(taint) == 0 ||
            !visited.insert(e.callee).second) {
          continue;
        }
        parent[e.callee] = at;
        queue.push_back(e.callee);
      }
    }
    return Hop(fns_[start]);  // Unreachable seed: degrade gracefully.
  }

  static size_t SkipWs(const std::string& s, size_t pos) {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    return pos;
  }

  const std::vector<Source>& sources_;
  std::vector<Fn> fns_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::map<std::string, std::vector<size_t>> by_last_;
};

// Rule 1: consensus-reaches-nondet.
void Analysis::EmitRootFindings(std::vector<Finding>* out) const {
  for (size_t i = 0; i < fns_.size(); ++i) {
    const Fn& fn = fns_[i];
    if (!fn.is_root) continue;
    std::string taint;
    for (const std::string& t : fn.taints) {
      if (t.rfind("nondet:", 0) == 0) {
        taint = t;
        break;  // Sets are ordered: first nondet:* is the smallest.
      }
    }
    if (taint.empty()) continue;
    EmitFinding(sources_[fn.src_index], fn.def.name_pos,
                "consensus-reaches-nondet", ChainFor(i, taint), out);
  }
}

// Rule 2: parallel-body-effects. Scans each function's parallel-call
// argument extents: a direct snapshot/static seed inside the extent,
// or a resolved callee carrying any effect:* taint, is an effect
// smuggled into a parallel region. (Lexically nested Parallel* calls
// are parlint's nested-parallel; here the nested case is caught when
// it hides behind a call — the callee then carries effect:parallel.)
void Analysis::EmitParallelBodyFindings(std::vector<Finding>* out) const {
  for (size_t i = 0; i < fns_.size(); ++i) {
    const Fn& fn = fns_[i];
    const Source& src = sources_[fn.src_index];
    const std::string& code = src.code();
    std::set<size_t> emitted;  // Nested extents: once per offset.
    for (const char* name :
         {"ParallelChunks", "ParallelFor", "ParallelReduce"}) {
      const std::string token = name;
      size_t pos = fn.def.body_open + 1;
      while ((pos = code.find(token, pos)) != std::string::npos &&
             pos < fn.def.body_close) {
        if (!TokenAt(code, pos, token)) {
          pos += token.size();
          continue;
        }
        size_t open = pos + token.size();
        while (open < code.size() &&
               std::isspace(static_cast<unsigned char>(code[open]))) {
          ++open;
        }
        if (open >= code.size() || code[open] != '(') {
          pos += token.size();
          continue;
        }
        const size_t close = MatchParen(code, open);
        if (close == std::string::npos) {
          pos += token.size();
          continue;
        }
        for (const Seed& s : fn.seeds) {
          if (s.taint != "effect:snapshot" &&
              s.taint != "effect:static-mutation") {
            continue;
          }
          if (s.offset > open && s.offset < close &&
              emitted.insert(s.offset).second) {
            EmitFinding(src, s.offset, "parallel-body-effects",
                        SeedHop(fn, s), out);
          }
        }
        for (const Edge& e : fn.edges) {
          if (e.offset <= open || e.offset >= close) continue;
          const Fn& callee = fns_[e.callee];
          if (callee.is_barrier) continue;
          std::string taint;
          for (const std::string& t : callee.taints) {
            if (t.rfind("effect:", 0) == 0) {
              taint = t;
              break;
            }
          }
          if (taint.empty() || !emitted.insert(e.offset).second) continue;
          EmitFinding(src, e.offset, "parallel-body-effects",
                      ChainFor(e.callee, taint), out);
        }
        pos = close;
      }
    }
  }
}

// Rule 3: unannotated-root.
void Analysis::EmitUnannotatedRootFindings(std::vector<Finding>* out) const {
  for (const char* required : kRequiredRoots) {
    auto it = by_name_.find(required);
    if (it == by_name_.end()) continue;  // Not in the scanned set.
    for (size_t i : it->second) {
      const Fn& fn = fns_[i];
      if (fn.is_root) continue;
      EmitFinding(sources_[fn.src_index], fn.def.name_pos,
                  "unannotated-root", out);
    }
  }
}

// ----------------------------- Summaries --------------------------------

using SummaryMap = std::map<std::string, std::set<std::string>>;

bool WriteSummaries(const std::string& path, const SummaryMap& summaries) {
  std::ofstream out(path);
  out << "{\n  \"tool\": \"flowlint\",\n  \"version\": 1,\n"
      << "  \"functions\": [";
  size_t i = 0;
  for (const auto& [name, taints] : summaries) {
    out << (i++ == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << JsonEscape(name) << "\", \"taints\": [";
    size_t j = 0;
    for (const std::string& t : taints) {
      out << (j++ == 0 ? "" : ", ") << "\"" << JsonEscape(t) << "\"";
    }
    out << "]}";
  }
  out << (summaries.empty() ? "]\n" : "\n  ]\n") << "}\n";
  out.flush();
  return out.good();
}

// Minimal reader for the exact shape WriteSummaries produces (plus
// whitespace tolerance): `"name": "<fn>"` followed by
// `"taints": ["a", "b"]`, repeated.
bool ParseSummaries(const std::string& text, SummaryMap* out) {
  size_t pos = 0;
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    size_t q = text.find('"', text.find(':', pos) + 1);
    if (q == std::string::npos) return false;
    size_t qe = text.find('"', q + 1);
    if (qe == std::string::npos) return false;
    const std::string name = text.substr(q + 1, qe - q - 1);
    const size_t taints_key = text.find("\"taints\"", qe);
    if (taints_key == std::string::npos) return false;
    const size_t open = text.find('[', taints_key);
    const size_t close = text.find(']', taints_key);
    if (open == std::string::npos || close == std::string::npos) {
      return false;
    }
    std::set<std::string> taints;
    size_t t = open;
    while ((t = text.find('"', t + 1)) != std::string::npos && t < close) {
      const size_t te = text.find('"', t + 1);
      if (te == std::string::npos || te > close) return false;
      taints.insert(text.substr(t + 1, te - t - 1));
      t = te;
    }
    (*out)[name] = std::move(taints);
    pos = close;
  }
  return true;
}

std::string JoinTaints(const std::set<std::string>& taints) {
  std::string out;
  for (const std::string& t : taints) {
    out += (out.empty() ? "" : ", ") + t;
  }
  return out;
}

// Rule 4: taint-summary-drift. Findings attribute to the summary file
// itself; there is no source line to waive on, and drift is never
// acceptable — the fix is always to regenerate and review the diff.
void CheckSummaryDrift(const std::string& path, const SummaryMap& computed,
                       std::vector<Finding>* out) {
  std::ifstream in(path, std::ios::binary);
  SummaryMap recorded;
  bool parsed = false;
  if (in) {
    std::stringstream buffer;
    buffer << in.rdbuf();
    parsed = ParseSummaries(buffer.str(), &recorded);
  }
  auto drift = [&](const std::string& message) {
    Finding f;
    f.file = path;
    f.line = 1;
    f.rule = "taint-summary-drift";
    f.snippet = message + "; regenerate with --write-summaries";
    f.suppressed = false;
    out->push_back(std::move(f));
  };
  if (!parsed) {
    drift("summary file missing or unparsable");
    return;
  }
  for (const auto& [name, taints] : computed) {
    auto it = recorded.find(name);
    if (it == recorded.end()) {
      drift("summary missing function \"" + name + "\" (computed: " +
            JoinTaints(taints) + ")");
    } else if (it->second != taints) {
      drift("summary for \"" + name + "\" lists [" +
            JoinTaints(it->second) + "] but analysis computes [" +
            JoinTaints(taints) + "]");
    }
  }
  for (const auto& [name, taints] : recorded) {
    if (computed.count(name) == 0) {
      drift("summary lists \"" + name +
            "\" which is now absent or taint-free");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip flowlint's own flags before handing the rest to the shared
  // driver.
  std::string summaries_path;
  bool write_summaries = false;
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--summaries" && i + 1 < argc) {
      summaries_path = argv[++i];
    } else if (arg == "--write-summaries") {
      write_summaries = true;
    } else {
      pass.push_back(argv[i]);
    }
  }
  if (write_summaries && summaries_path.empty()) {
    std::cerr << "flowlint: --write-summaries requires --summaries <file>\n";
    return 1;
  }

  liblint::Tool tool;
  tool.name = "flowlint";
  tool.tagline =
      "interprocedural taint analysis of the §7 determinism and §9/§10 "
      "parallel and snapshot contracts";
  tool.rules = kRules;
  tool.rule_count = sizeof(kRules) / sizeof(kRules[0]);
  bool summaries_write_failed = false;
  tool.scan_program = [&](const std::vector<Source>& sources,
                          std::vector<Finding>* out) {
    Analysis analysis(sources);
    analysis.Run();
    analysis.EmitRootFindings(out);
    analysis.EmitParallelBodyFindings(out);
    analysis.EmitUnannotatedRootFindings(out);
    if (write_summaries) {
      if (!WriteSummaries(summaries_path, analysis.Summaries())) {
        summaries_write_failed = true;
      }
    } else if (!summaries_path.empty()) {
      CheckSummaryDrift(summaries_path, analysis.Summaries(), out);
    }
  };
  const int rc = liblint::RunLinter(tool, static_cast<int>(pass.size()),
                                    pass.data());
  if (summaries_write_failed) {
    std::cerr << "flowlint: cannot write summaries to \"" << summaries_path
              << "\"\n";
    return 1;
  }
  return rc;
}
