// Fixture for the flowlint self-test: the same hazard patterns as
// hazards.cc, but every finding carries a flowlint:allow() waiver —
// the flowlint_honors_suppressions CTest case expects a clean exit,
// and the same run under --check-waivers must stay clean because
// every waiver here suppresses a real finding. Never compiled into
// any target.

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace fixture {

struct ThreadPool;
template <typename B>
void ParallelFor(ThreadPool*, size_t, size_t, const B&);

struct Journal {
  size_t Snapshot();
  bool Commit(size_t id);
  bool RevertTo(size_t id);
};

inline int64_t StampMicros() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

inline uint64_t PackCandidates(uint64_t h) {
  return h ^ static_cast<uint64_t>(StampMicros());
}

// flowlint: deterministic-root
// flowlint:allow(consensus-reaches-nondet): fixture — stamp is display-only
inline uint64_t BuildDigest(uint64_t h) {
  return PackCandidates(h) * 0x9e3779b97f4a7c15ull;
}

inline bool TryApply(Journal* j) {
  const size_t snap = j->Snapshot();
  if (!j->Commit(snap)) {
    j->RevertTo(snap);
    return false;
  }
  return true;
}

inline size_t ApplyAll(ThreadPool* pool, Journal* j, size_t n) {
  size_t applied = 0;
  ParallelFor(pool, n, 64, [j, &applied](size_t i) {
    (void)i;
    // flowlint:allow(parallel-body-effects): fixture — journal is lock-free
    if (TryApply(j)) ++applied;
  });
  return applied;
}

// flowlint:allow(unannotated-root): fixture exercising the waiver path
inline uint64_t RunSelectionGame(uint64_t seed) {
  return seed * 6364136223846793005ull + 1442695040888963407ull;
}

}  // namespace fixture
