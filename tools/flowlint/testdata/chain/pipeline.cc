// Golden-report fixture: exactly one finding, whose full call chain —
// BuildBlock → PackCandidates → StampMicros → system_clock, with
// file:line per hop — is pinned byte-for-byte in golden_report.json
// and golden.sarif by the flowlint_chain_golden CTest case. The wall
// clock sits two calls below the annotated root, so the chain has
// three hops before the seed token. Never compiled into any target.

#include <chrono>
#include <cstdint>

namespace fixture {

inline int64_t StampMicros() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

inline uint64_t PackCandidates(uint64_t h) {
  return h ^ static_cast<uint64_t>(StampMicros());
}

// flowlint: deterministic-root
inline uint64_t BuildBlock(uint64_t h) { return PackCandidates(h); }

}  // namespace fixture
