// Drift fixture: two functions whose taint summary is pinned in
// summaries_ok.json (in sync: the flowlint_summary_in_sync CTest case
// expects a clean exit) and in summaries_stale.json with MixNonce
// deleted (the flowlint_summary_drift case expects taint-summary-drift
// to fire). No roots and no parallel regions, so the ONLY findings
// either run can produce come from the summary comparison. Never
// compiled into any target.

#include <chrono>
#include <cstdint>

namespace fixture {

inline int64_t StampNonce() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

inline uint64_t MixNonce(uint64_t h) {
  return h ^ static_cast<uint64_t>(StampNonce());
}

}  // namespace fixture
