// Fixture for the flowlint self-test: the contract-compliant twin of
// hazards.cc. Deterministic helpers below an annotated root, a
// parallel body that only touches its disjoint slice, and a required
// entry point carrying its annotation — the flowlint_clean_fixture
// CTest case expects a clean exit. Never compiled into any target.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct ThreadPool;
template <typename B>
void ParallelFor(ThreadPool*, size_t, size_t, const B&);

inline uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  return h * 0xff51afd7ed558ccdull;
}

inline uint64_t PackCandidates(uint64_t h) { return Mix(h) + 1; }

// flowlint: deterministic-root
inline uint64_t BuildDigest(uint64_t h) {
  return PackCandidates(h) * 0x9e3779b97f4a7c15ull;
}

inline double Scale(double x) { return 2.0 * x; }

inline void ScaleAll(ThreadPool* pool, std::vector<double>* out) {
  ParallelFor(pool, out->size(), 64, [out](size_t i) {
    (*out)[i] = Scale((*out)[i]);
  });
}

// flowlint: deterministic-root
inline uint64_t RunSelectionGame(uint64_t seed) {
  return Mix(seed * 6364136223846793005ull + 1442695040888963407ull);
}

}  // namespace fixture
