// Fixture for the flowlint self-test: rules 1–3 must each fire at
// least once in this file, UNSUPPRESSED (rule 4, taint-summary-drift,
// needs a --summaries file and has its own fixtures under drift/). The
// flowlint_detects_hazards CTest case runs the scanner over this file
// and expects a nonzero exit. Never compiled into any target.

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace fixture {

struct ThreadPool;
template <typename B>
void ParallelFor(ThreadPool*, size_t, size_t, const B&);

struct Journal {
  size_t Snapshot();
  bool Commit(size_t id);
  bool RevertTo(size_t id);
};

// Rule: consensus-reaches-nondet — StampMicros reads the wall clock,
// PackCandidates calls it, and the annotated root sits two calls
// above: the 3-hop chain BuildDigest → PackCandidates → StampMicros →
// system_clock.
inline int64_t StampMicros() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

inline uint64_t PackCandidates(uint64_t h) {
  return h ^ static_cast<uint64_t>(StampMicros());
}

// flowlint: deterministic-root
inline uint64_t BuildDigest(uint64_t h) {
  return PackCandidates(h) * 0x9e3779b97f4a7c15ull;
}

// Rule: parallel-body-effects — TryApply brackets the journal; calling
// it from a ParallelFor lambda smuggles snapshot ops into a parallel
// region.
inline bool TryApply(Journal* j) {
  const size_t snap = j->Snapshot();
  if (!j->Commit(snap)) {
    j->RevertTo(snap);
    return false;
  }
  return true;
}

inline size_t ApplyAll(ThreadPool* pool, Journal* j, size_t n) {
  size_t applied = 0;
  ParallelFor(pool, n, 64, [j, &applied](size_t i) {
    (void)i;
    if (TryApply(j)) ++applied;
  });
  return applied;
}

// Rule: unannotated-root — a required consensus entry point defined
// without its deterministic-root annotation.
inline uint64_t RunSelectionGame(uint64_t seed) {
  return seed * 6364136223846793005ull + 1442695040888963407ull;
}

}  // namespace fixture
