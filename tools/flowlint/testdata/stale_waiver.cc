// Fixture for the flowlint self-test: clean code carrying waivers
// that suppress nothing. A plain scan exits clean (waivers are inert),
// but the flowlint_flags_stale_waivers CTest case runs with
// --check-waivers and expects a nonzero exit: every allow() below is
// stale. Never compiled into any target.

#include <cstdint>

namespace fixture {

inline uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  return h * 0xff51afd7ed558ccdull;
}

// flowlint: deterministic-root
// flowlint:allow(consensus-reaches-nondet): stale — the body is pure
inline uint64_t BuildDigest(uint64_t h) { return Mix(h) + 1; }

// flowlint:allow(unannotated-root): stale — not a required entry point
inline uint64_t HelperDigest(uint64_t h) { return Mix(h) ^ 7; }

inline uint64_t FoldDigest(uint64_t h) {
  // flowlint:allow(parallel-body-effects): stale — no parallel region here
  return Mix(h) * 31;
}

}  // namespace fixture
