// Fixture for the detlint self-test: every rule must fire at least
// once in this file, UNSUPPRESSED. The detlint_detects_hazards CTest
// case runs the scanner over this file and expects a nonzero exit.
// This file is never compiled into any target.

#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Consensus {
  // Rule: unordered-container.
  std::unordered_map<int, double> weights;
  std::unordered_set<long> members;

  double Total() const {
    double sum = 0.0;
    // Rules: unordered-iteration + order-dependent-accumulation.
    for (const auto& [id, w] : weights) {
      sum += w;
    }
    return sum;
  }

  long First() const {
    // Rule: unordered-iteration (explicit iterator form).
    return *members.begin();
  }
};

inline int BadSeed() {
  // Rule: std-rand.
  std::srand(42);
  return std::rand();
}

inline unsigned HardwareEntropy() {
  // Rule: random-device.
  std::random_device rd;
  return rd();
}

inline long Now() {
  // Rule: wall-clock.
  return std::time(nullptr);
}

struct Node {
  int value;
};

// Rule: pointer-keyed-order — iteration order is allocation order.
inline std::map<Node*, int> ranks;
inline std::set<const Node*> visited;

}  // namespace fixture
