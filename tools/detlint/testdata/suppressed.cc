// Fixture for the detlint self-test: the same hazard patterns as
// hazards.cc, but every one carries a detlint:allow() waiver — the
// detlint_honors_suppressions CTest case expects a clean exit. This
// file is never compiled into any target.

#include <cstdlib>
#include <ctime>
#include <unordered_map>

namespace fixture {

struct Cache {
  // Lookup-only cache; never iterated.
  // detlint:allow(unordered-container): lookup-only, order never observed
  std::unordered_map<int, int> table;

  int Sum() const {
    int total = 0;
    // detlint:allow(unordered-iteration)
    for (const auto& [k, v] : table) {
      total += v;  // detlint:allow(order-dependent-accumulation)
    }
    return total;
  }
};

inline long Stamp() {
  return std::time(nullptr);  // detlint:allow(wall-clock): log-only path
}

inline int Noise() {
  // detlint:allow(std-rand): test fixture, not consensus code
  return std::rand();
}

}  // namespace fixture
