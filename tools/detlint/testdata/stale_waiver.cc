// Fixture for the detlint --check-waivers self-test: clean code
// carrying waivers that suppress nothing. A plain scan exits 0; the
// detlint_flags_stale_waivers CTest case runs with --check-waivers and
// expects a nonzero exit with one `stale-waiver` finding per entry.
// This file is never compiled into any target.

#include <map>

namespace fixture {

// detlint:allow(unordered-container): container was made ordered long ago
inline std::map<int, int> ranks;

inline int Lookup(int key) {
  auto it = ranks.find(key);
  // detlint:allow(wall-clock, std-rand)
  return it == ranks.end() ? 0 : it->second;
}

}  // namespace fixture
