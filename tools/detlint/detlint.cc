// detlint — determinism lint for the consensus-critical path.
//
// The parameter-unification scheme (Sec. IV-C) requires every miner to
// recompute Algorithms 1–3 bit-identically from the leader's unified
// inputs. Any nondeterminism in that path — unordered-container
// iteration order, stray RNG, wall-clock reads, pointer-keyed ordering,
// iteration-order-dependent float accumulation — is a consensus-
// splitting bug: two honest miners derive different plans from the same
// broadcast and fork the shard.
//
// This tool scans the consensus-critical directories (src/core,
// src/consensus, src/crypto, src/types, src/contract) for those hazard
// patterns. It is a heuristic, text-level scanner, not a compiler
// plugin: it errs on the side of flagging, and intentional uses are
// waived inline with
//
//     // detlint:allow(<rule>[,<rule>...]): optional justification
//
// placed on the offending line or the line directly above it.
//
// Usage:
//   detlint [--report <file.json>] [--root <dir>] [--list-rules]
//           <dir-or-file>...
//
// Exit codes: 0 = clean (all findings suppressed or none), 1 = usage /
// IO error, 2 = unsuppressed findings present.
//
// Rules:
//   unordered-container   declaration of std::unordered_{map,set,...}
//   unordered-iteration   range-for / .begin() over such a container
//   order-dependent-accumulation
//                         float/double += inside unordered iteration
//   std-rand              std::rand / srand / rand()
//   random-device         std::random_device
//   wall-clock            time(), gettimeofday, std::chrono clocks,
//                         __DATE__ / __TIME__
//   pointer-keyed-order   std::map/std::set ordered on a pointer key

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ----------------------------- Findings ---------------------------------

struct Finding {
  std::string file;  // As given (relative to --root when provided).
  size_t line = 0;   // 1-based.
  std::string rule;
  std::string snippet;
  bool suppressed = false;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"unordered-container",
     "std::unordered_* declared in consensus-critical code; iteration "
     "order varies across builds and processes"},
    {"unordered-iteration",
     "iteration over an unordered container; order is not part of the "
     "container's contract"},
    {"order-dependent-accumulation",
     "floating-point accumulation inside unordered iteration; FP "
     "addition is not associative, so the sum depends on visit order"},
    {"std-rand", "global C RNG; stream is process-wide, unseeded state"},
    {"random-device",
     "hardware entropy source; values differ on every call"},
    {"wall-clock",
     "wall-clock or monotonic time read; differs across miners"},
    {"pointer-keyed-order",
     "ordered container keyed on a pointer; address order is decided by "
     "the allocator, not the data"},
};

// --------------------------- Text utilities -----------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True if content[pos..] starts with `token` on identifier boundaries.
bool TokenAt(const std::string& s, size_t pos, const std::string& token) {
  if (s.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1]) && IsIdentChar(token.front())) {
    return false;
  }
  const size_t end = pos + token.size();
  if (end < s.size() && IsIdentChar(token.back()) && IsIdentChar(s[end])) {
    return false;
  }
  return true;
}

// ------------------------- Preprocessed source --------------------------

// A file's content with comments and string/char literals blanked out
// (offsets preserved), plus per-line suppression info extracted from the
// comments before blanking.
class Source {
 public:
  Source(std::string path, std::string raw)
      : path_(std::move(path)), code_(std::move(raw)) {
    IndexLines();
    StripCommentsAndLiterals();
  }

  const std::string& path() const { return path_; }
  const std::string& code() const { return code_; }

  size_t LineOf(size_t offset) const {
    // line_starts_ is sorted; find the last start <= offset.
    auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(),
                               offset);
    return static_cast<size_t>(it - line_starts_.begin());  // 1-based.
  }

  std::string LineText(size_t line) const {  // 1-based, trimmed.
    if (line == 0 || line > line_starts_.size()) return {};
    const size_t begin = line_starts_[line - 1];
    size_t end = line < line_starts_.size() ? line_starts_[line] : raw_.size();
    while (end > begin && (raw_[end - 1] == '\n' || raw_[end - 1] == '\r')) {
      --end;
    }
    std::string text = raw_.substr(begin, end - begin);
    const size_t first = text.find_first_not_of(" \t");
    return first == std::string::npos ? std::string() : text.substr(first);
  }

  // True when `rule` is waived on `line` (same line or the one above).
  bool Suppressed(size_t line, const std::string& rule) const {
    return SuppressedOn(line, rule) || SuppressedOn(line - 1, rule);
  }

 private:
  void IndexLines() {
    line_starts_.push_back(0);
    for (size_t i = 0; i < code_.size(); ++i) {
      if (code_[i] == '\n' && i + 1 < code_.size()) {
        line_starts_.push_back(i + 1);
      }
    }
  }

  bool SuppressedOn(size_t line, const std::string& rule) const {
    auto it = allow_.find(line);
    if (it == allow_.end()) return false;
    const std::set<std::string>& rules = it->second;
    return rules.count("*") > 0 || rules.count(rule) > 0;
  }

  // Records a `detlint:allow(a,b)` directive found in a comment.
  void ParseAllow(const std::string& comment, size_t line) {
    const std::string kTag = "detlint:allow(";
    size_t pos = comment.find(kTag);
    while (pos != std::string::npos) {
      const size_t open = pos + kTag.size();
      const size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      std::string list = comment.substr(open, close - open);
      std::stringstream ss(list);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        const size_t a = rule.find_first_not_of(" \t");
        const size_t b = rule.find_last_not_of(" \t");
        if (a != std::string::npos) {
          allow_[line].insert(rule.substr(a, b - a + 1));
        }
      }
      pos = comment.find(kTag, close);
    }
  }

  // Blanks comments and literals in place; harvests suppressions first.
  void StripCommentsAndLiterals() {
    raw_ = code_;
    enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
    State state = State::kCode;
    size_t token_start = 0;
    std::string raw_delim;  // For R"delim( ... )delim".
    for (size_t i = 0; i < code_.size(); ++i) {
      const char c = code_[i];
      const char next = i + 1 < code_.size() ? code_[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLine;
            token_start = i;
          } else if (c == '/' && next == '*') {
            state = State::kBlock;
            token_start = i;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || !IsIdentChar(code_[i - 1]))) {
            const size_t paren = code_.find('(', i + 2);
            if (paren != std::string::npos) {
              raw_delim = ")" + code_.substr(i + 2, paren - i - 2) + "\"";
              state = State::kRawString;
              token_start = i;
              i = paren;
            }
          } else if (c == '"') {
            state = State::kString;
            token_start = i;
          } else if (c == '\'' &&
                     !(i > 0 && std::isdigit(
                                    static_cast<unsigned char>(code_[i - 1])))) {
            // Skip digit separators like 1'000'000.
            state = State::kChar;
            token_start = i;
          }
          break;
        case State::kLine:
          if (c == '\n') {
            ParseAllow(code_.substr(token_start, i - token_start),
                       LineOf(token_start));
            Blank(token_start, i);
            state = State::kCode;
          }
          break;
        case State::kBlock:
          if (c == '*' && next == '/') {
            ParseAllow(code_.substr(token_start, i + 2 - token_start),
                       LineOf(token_start));
            Blank(token_start, i + 2);
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"' || c == '\n') {
            Blank(token_start + 1, i);
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'' || c == '\n') {
            Blank(token_start + 1, i);
            state = State::kCode;
          }
          break;
        case State::kRawString:
          if (code_.compare(i, raw_delim.size(), raw_delim) == 0) {
            Blank(token_start + 1, i + raw_delim.size() - 1);
            i += raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
      }
    }
    if (state == State::kLine) {
      ParseAllow(code_.substr(token_start), LineOf(token_start));
      Blank(token_start, code_.size());
    }
  }

  void Blank(size_t begin, size_t end) {
    for (size_t i = begin; i < end && i < code_.size(); ++i) {
      if (code_[i] != '\n') code_[i] = ' ';
    }
  }

  std::string path_;
  std::string code_;  // Blanked copy scanned by the rules.
  std::string raw_;   // Original text, for snippets.
  std::vector<size_t> line_starts_;
  std::map<size_t, std::set<std::string>> allow_;  // line -> rules.
};

// ------------------------------ Scanner ---------------------------------

class Scanner {
 public:
  explicit Scanner(std::vector<Finding>* out) : out_(out) {}

  void ScanFile(const Source& src) {
    CollectUnorderedNames(src);
    ScanDeclarations(src);
    ScanIteration(src);
    ScanCalls(src);
    ScanPointerKeys(src);
  }

 private:
  void Emit(const Source& src, size_t offset, const std::string& rule) {
    const size_t line = src.LineOf(offset);
    Finding f;
    f.file = src.path();
    f.line = line;
    f.rule = rule;
    f.snippet = src.LineText(line);
    f.suppressed = src.Suppressed(line, rule);
    out_->push_back(std::move(f));
  }

  // Matches the closing '>' of a template argument list opened at
  // `open` (which must index '<'). Returns npos when unbalanced.
  static size_t MatchAngle(const std::string& s, size_t open) {
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>') {
        if (--depth == 0) return i;
      }
      if (s[i] == ';' || s[i] == '{') return std::string::npos;
    }
    return std::string::npos;
  }

  // Identifier declared right after a type's template argument list.
  static std::string DeclaredName(const std::string& s, size_t after_type) {
    size_t i = after_type;
    while (i < s.size() &&
           (std::isspace(static_cast<unsigned char>(s[i])) || s[i] == '&' ||
            s[i] == '*')) {
      ++i;
    }
    size_t end = i;
    while (end < s.size() && IsIdentChar(s[end])) ++end;
    return s.substr(i, end - i);
  }

  // Pass 1: names of variables/members declared with unordered types in
  // this file, so the iteration pass knows what to look for.
  void CollectUnorderedNames(const Source& src) {
    const std::string& code = src.code();
    for (const char* type :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
      size_t pos = 0;
      while ((pos = code.find(type, pos)) != std::string::npos) {
        if (!TokenAt(code, pos, type)) {
          pos += std::strlen(type);
          continue;
        }
        const size_t open = code.find('<', pos);
        if (open != std::string::npos && open < pos + std::strlen(type) + 2) {
          const size_t close = MatchAngle(code, open);
          if (close != std::string::npos) {
            const std::string name = DeclaredName(code, close + 1);
            if (!name.empty()) unordered_names_.insert(name);
          }
        }
        pos += std::strlen(type);
      }
    }
  }

  // Rule: unordered-container (the declarations themselves).
  void ScanDeclarations(const Source& src) {
    const std::string& code = src.code();
    for (const char* type :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
      size_t pos = 0;
      while ((pos = code.find(type, pos)) != std::string::npos) {
        if (TokenAt(code, pos, type) &&
            code.find('<', pos) == pos + std::strlen(type)) {
          Emit(src, pos, "unordered-container");
        }
        pos += std::strlen(type);
      }
    }
  }

  // The identifier a range-for loops over: the last identifier of the
  // range expression (handles `m`, `this->m`, `obj.m`, `*ptr`).
  static std::string RangeIdent(std::string expr) {
    while (!expr.empty() &&
           !IsIdentChar(expr.back())) {
      expr.pop_back();
    }
    size_t begin = expr.size();
    while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
    return expr.substr(begin);
  }

  // Rules: unordered-iteration + order-dependent-accumulation.
  void ScanIteration(const Source& src) {
    if (unordered_names_.empty()) return;
    const std::string& code = src.code();
    size_t pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
      if (!TokenAt(code, pos, "for")) {
        pos += 3;
        continue;
      }
      size_t paren = pos + 3;
      while (paren < code.size() &&
             std::isspace(static_cast<unsigned char>(code[paren]))) {
        ++paren;
      }
      if (paren >= code.size() || code[paren] != '(') {
        pos += 3;
        continue;
      }
      // Find the ':' at depth 1 (range-for) and the closing ')'.
      int depth = 0;
      size_t colon = std::string::npos, close = std::string::npos;
      for (size_t i = paren; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')') {
          if (--depth == 0) {
            close = i;
            break;
          }
        }
        if (code[i] == ':' && depth == 1 && colon == std::string::npos &&
            (i + 1 >= code.size() || code[i + 1] != ':') &&
            (i == 0 || code[i - 1] != ':')) {
          colon = i;
        }
        if (code[i] == ';') break;  // Classic for; not a range-for.
      }
      if (colon != std::string::npos && close != std::string::npos) {
        const std::string ident =
            RangeIdent(code.substr(colon + 1, close - colon - 1));
        if (unordered_names_.count(ident) > 0) {
          Emit(src, pos, "unordered-iteration");
          ScanAccumulation(src, close);
        }
      }
      pos = close == std::string::npos ? pos + 3 : close;
    }
    // `.begin()` / `.cbegin()` on a known unordered name.
    for (const std::string& name : unordered_names_) {
      for (const char* member : {".begin", ".cbegin", "->begin", "->cbegin"}) {
        const std::string pattern = name + member;
        size_t p = 0;
        while ((p = code.find(pattern, p)) != std::string::npos) {
          if (TokenAt(code, p, name)) {
            Emit(src, p, "unordered-iteration");
          }
          p += pattern.size();
        }
      }
    }
  }

  // Inside the loop body that starts after `close` (the range-for's
  // closing paren): flag `+=` — under unordered iteration even integer
  // accumulation is suspect, and float accumulation is a guaranteed
  // hazard, so the rule is emitted for any compound addition.
  void ScanAccumulation(const Source& src, size_t close) {
    const std::string& code = src.code();
    size_t i = close + 1;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    size_t end;
    if (i < code.size() && code[i] == '{') {
      int depth = 0;
      end = i;
      for (; end < code.size(); ++end) {
        if (code[end] == '{') ++depth;
        if (code[end] == '}' && --depth == 0) break;
      }
    } else {
      end = code.find(';', i);
      if (end == std::string::npos) end = code.size();
    }
    for (size_t p = i; p + 1 < end; ++p) {
      if (code[p] == '+' && code[p + 1] == '=') {
        Emit(src, p, "order-dependent-accumulation");
      }
    }
  }

  // Rules: std-rand, random-device, wall-clock.
  void ScanCalls(const Source& src) {
    const std::string& code = src.code();
    struct Pattern {
      const char* token;
      const char* rule;
      bool needs_call = false;  // Must be followed by '('.
    };
    constexpr Pattern kPatterns[] = {
        {"srand", "std-rand", true},
        {"rand", "std-rand", true},
        {"random_device", "random-device"},
        {"time", "wall-clock", true},
        {"gettimeofday", "wall-clock", true},
        {"clock", "wall-clock", true},
        {"system_clock", "wall-clock"},
        {"steady_clock", "wall-clock"},
        {"high_resolution_clock", "wall-clock"},
        {"__DATE__", "wall-clock"},
        {"__TIME__", "wall-clock"},
        {"__TIMESTAMP__", "wall-clock"},
    };
    for (const Pattern& p : kPatterns) {
      size_t pos = 0;
      const std::string token = p.token;
      while ((pos = code.find(token, pos)) != std::string::npos) {
        if (!TokenAt(code, pos, token)) {
          pos += token.size();
          continue;
        }
        // Member access like `obj.rand` or `x.time` is a method of that
        // object, not the libc symbol. Qualified `std::rand` still
        // matches: the bare token is found after the "::".
        if (pos >= 1 && code[pos - 1] == '.') {
          pos += token.size();
          continue;
        }
        if (p.needs_call) {
          size_t after = pos + token.size();
          while (after < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[after]))) {
            ++after;
          }
          if (after >= code.size() || code[after] != '(') {
            pos += token.size();
            continue;
          }
        }
        Emit(src, pos, p.rule);
        pos += token.size();
      }
    }
  }

  // Rule: pointer-keyed-order — std::map< T* , ...> / std::set<T*>.
  void ScanPointerKeys(const Source& src) {
    const std::string& code = src.code();
    for (const char* type : {"map", "set", "multimap", "multiset"}) {
      size_t pos = 0;
      const std::string token = type;
      while ((pos = code.find(token, pos)) != std::string::npos) {
        if (!TokenAt(code, pos, token) ||
            code.find('<', pos) != pos + token.size()) {
          pos += token.size();
          continue;
        }
        const size_t open = pos + token.size();
        const size_t close = MatchAngle(code, open);
        if (close == std::string::npos) {
          pos += token.size();
          continue;
        }
        // Key type: first template argument at depth 1.
        int depth = 0;
        size_t key_end = close;
        for (size_t i = open; i <= close; ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>') --depth;
          if (code[i] == ',' && depth == 1) {
            key_end = i;
            break;
          }
        }
        std::string key = code.substr(open + 1, key_end - open - 1);
        while (!key.empty() &&
               std::isspace(static_cast<unsigned char>(key.back()))) {
          key.pop_back();
        }
        if (!key.empty() && key.back() == '*') {
          Emit(src, pos, "pointer-keyed-order");
        }
        pos = close;
      }
    }
  }

  std::vector<Finding>* out_;
  std::set<std::string> unordered_names_;
};

// ------------------------------ Driver ----------------------------------

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteReport(const std::string& path, const std::vector<Finding>& findings,
                 size_t files_scanned, size_t unsuppressed) {
  std::ofstream out(path);
  out << "{\n  \"tool\": \"detlint\",\n  \"version\": 1,\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"unsuppressed\": " << unsuppressed << ",\n";
  out << "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << f.rule << "\", \"suppressed\": "
        << (f.suppressed ? "true" : "false") << ", \"snippet\": \""
        << JsonEscape(f.snippet) << "\"}";
  }
  out << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  out.flush();
  return out.good();
}

int Usage() {
  std::cerr << "usage: detlint [--report <file.json>] [--root <dir>] "
               "[--list-rules] <dir-or-file>...\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> targets;
  std::string report_path;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::cout << r.name << "\t" << r.summary << "\n";
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) return Usage();

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    const fs::path base = root.empty() ? fs::path(t) : fs::path(root) / t;
    std::error_code ec;
    if (fs::is_directory(base, ec)) {
      for (auto it = fs::recursive_directory_iterator(base, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && HasSourceExtension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
    } else {
      std::cerr << "detlint: cannot read " << base << "\n";
      return 1;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "detlint: cannot open " << file << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string shown = file.string();
    if (!root.empty()) {
      const std::string prefix = (fs::path(root) / "").string();
      if (shown.rfind(prefix, 0) == 0) shown = shown.substr(prefix.size());
    }
    Source src(shown, buffer.str());
    Scanner scanner(&findings);
    scanner.ScanFile(src);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  size_t unsuppressed = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++unsuppressed;
  }
  if (!report_path.empty() &&
      !WriteReport(report_path, findings, files.size(), unsuppressed)) {
    std::cerr << "detlint: cannot write report to \"" << report_path
              << "\"\n";
    return 1;
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": "
              << (f.suppressed ? "allowed" : "error") << " [" << f.rule
              << "] " << f.snippet << "\n";
  }
  std::cout << "detlint: " << files.size() << " files, " << findings.size()
            << " findings, " << unsuppressed << " unsuppressed\n";
  return unsuppressed == 0 ? 0 : 2;
}
