// detlint — determinism lint for the consensus-critical path.
//
// The parameter-unification scheme (Sec. IV-C) requires every miner to
// recompute Algorithms 1–3 bit-identically from the leader's unified
// inputs. Any nondeterminism in that path — unordered-container
// iteration order, stray RNG, wall-clock reads, pointer-keyed ordering,
// iteration-order-dependent float accumulation — is a consensus-
// splitting bug: two honest miners derive different plans from the same
// broadcast and fork the shard.
//
// This tool scans the consensus-critical directories (plus bench/,
// examples/, and tools/ itself — timing reads there carry lookup-only
// waivers) for those hazard patterns. The scanner core — file walking,
// comment/literal stripping, `detlint:allow(...)` waivers, JSON
// reports, `--check-waivers` — is the shared liblint driver
// (tools/liblint/); this file holds only the rule table and the rule
// scanners. See also tools/parlint, the sibling tool enforcing the
// DESIGN.md §9/§10 parallelism and snapshot-journal contracts.
//
// Usage:
//   detlint [--report <file.json>] [--root <dir>] [--list-rules]
//           [--rules-md] [--check-waivers] <dir-or-file>...
//
// Exit codes: 0 = clean (all findings suppressed or none), 1 = usage /
// IO error, 2 = unsuppressed findings present.

#include <cctype>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "liblint/liblint.h"

namespace {

using liblint::EmitFinding;
using liblint::Finding;
using liblint::IsIdentChar;
using liblint::MatchAngle;
using liblint::RuleInfo;
using liblint::Source;
using liblint::TokenAt;

constexpr RuleInfo kRules[] = {
    {"unordered-container",
     "std::unordered_* declared in consensus-critical code; iteration "
     "order varies across builds and processes"},
    {"unordered-iteration",
     "iteration over an unordered container; order is not part of the "
     "container's contract"},
    {"order-dependent-accumulation",
     "floating-point accumulation inside unordered iteration; FP "
     "addition is not associative, so the sum depends on visit order"},
    {"std-rand", "global C RNG; stream is process-wide, unseeded state"},
    {"random-device",
     "hardware entropy source; values differ on every call"},
    {"wall-clock",
     "wall-clock or monotonic time read; differs across miners"},
    {"pointer-keyed-order",
     "ordered container keyed on a pointer; address order is decided by "
     "the allocator, not the data"},
};

// ------------------------------ Scanner ---------------------------------

class Scanner {
 public:
  explicit Scanner(std::vector<Finding>* out) : out_(out) {}

  void ScanFile(const Source& src) {
    CollectUnorderedNames(src);
    ScanDeclarations(src);
    ScanIteration(src);
    ScanCalls(src);
    ScanPointerKeys(src);
  }

 private:
  void Emit(const Source& src, size_t offset, const std::string& rule) {
    EmitFinding(src, offset, rule, out_);
  }

  // Identifier declared right after a type's template argument list.
  static std::string DeclaredName(const std::string& s, size_t after_type) {
    size_t i = after_type;
    while (i < s.size() &&
           (std::isspace(static_cast<unsigned char>(s[i])) || s[i] == '&' ||
            s[i] == '*')) {
      ++i;
    }
    size_t end = i;
    while (end < s.size() && IsIdentChar(s[end])) ++end;
    return s.substr(i, end - i);
  }

  // Pass 1: names of variables/members declared with unordered types in
  // this file, so the iteration pass knows what to look for.
  void CollectUnorderedNames(const Source& src) {
    const std::string& code = src.code();
    for (const char* type :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
      size_t pos = 0;
      while ((pos = code.find(type, pos)) != std::string::npos) {
        if (!TokenAt(code, pos, type)) {
          pos += std::strlen(type);
          continue;
        }
        const size_t open = code.find('<', pos);
        if (open != std::string::npos && open < pos + std::strlen(type) + 2) {
          const size_t close = MatchAngle(code, open);
          if (close != std::string::npos) {
            const std::string name = DeclaredName(code, close + 1);
            if (!name.empty()) unordered_names_.insert(name);
          }
        }
        pos += std::strlen(type);
      }
    }
  }

  // Rule: unordered-container (the declarations themselves).
  void ScanDeclarations(const Source& src) {
    const std::string& code = src.code();
    for (const char* type :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
      size_t pos = 0;
      while ((pos = code.find(type, pos)) != std::string::npos) {
        if (TokenAt(code, pos, type) &&
            code.find('<', pos) == pos + std::strlen(type)) {
          Emit(src, pos, "unordered-container");
        }
        pos += std::strlen(type);
      }
    }
  }

  // The identifier a range-for loops over: the last identifier of the
  // range expression (handles `m`, `this->m`, `obj.m`, `*ptr`).
  static std::string RangeIdent(std::string expr) {
    while (!expr.empty() && !IsIdentChar(expr.back())) {
      expr.pop_back();
    }
    size_t begin = expr.size();
    while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
    return expr.substr(begin);
  }

  // Rules: unordered-iteration + order-dependent-accumulation.
  void ScanIteration(const Source& src) {
    if (unordered_names_.empty()) return;
    const std::string& code = src.code();
    size_t pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
      if (!TokenAt(code, pos, "for")) {
        pos += 3;
        continue;
      }
      size_t paren = pos + 3;
      while (paren < code.size() &&
             std::isspace(static_cast<unsigned char>(code[paren]))) {
        ++paren;
      }
      if (paren >= code.size() || code[paren] != '(') {
        pos += 3;
        continue;
      }
      // Find the ':' at depth 1 (range-for) and the closing ')'.
      int depth = 0;
      size_t colon = std::string::npos, close = std::string::npos;
      for (size_t i = paren; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')') {
          if (--depth == 0) {
            close = i;
            break;
          }
        }
        if (code[i] == ':' && depth == 1 && colon == std::string::npos &&
            (i + 1 >= code.size() || code[i + 1] != ':') &&
            (i == 0 || code[i - 1] != ':')) {
          colon = i;
        }
        if (code[i] == ';') break;  // Classic for; not a range-for.
      }
      if (colon != std::string::npos && close != std::string::npos) {
        const std::string ident =
            RangeIdent(code.substr(colon + 1, close - colon - 1));
        if (unordered_names_.count(ident) > 0) {
          Emit(src, pos, "unordered-iteration");
          ScanAccumulation(src, close);
        }
      }
      pos = close == std::string::npos ? pos + 3 : close;
    }
    // `.begin()` / `.cbegin()` on a known unordered name.
    for (const std::string& name : unordered_names_) {
      for (const char* member : {".begin", ".cbegin", "->begin", "->cbegin"}) {
        const std::string pattern = name + member;
        size_t p = 0;
        while ((p = code.find(pattern, p)) != std::string::npos) {
          if (TokenAt(code, p, name)) {
            Emit(src, p, "unordered-iteration");
          }
          p += pattern.size();
        }
      }
    }
  }

  // Inside the loop body that starts after `close` (the range-for's
  // closing paren): flag `+=` — under unordered iteration even integer
  // accumulation is suspect, and float accumulation is a guaranteed
  // hazard, so the rule is emitted for any compound addition.
  void ScanAccumulation(const Source& src, size_t close) {
    const std::string& code = src.code();
    size_t i = close + 1;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    size_t end;
    if (i < code.size() && code[i] == '{') {
      int depth = 0;
      end = i;
      for (; end < code.size(); ++end) {
        if (code[end] == '{') ++depth;
        if (code[end] == '}' && --depth == 0) break;
      }
    } else {
      end = code.find(';', i);
      if (end == std::string::npos) end = code.size();
    }
    for (size_t p = i; p + 1 < end; ++p) {
      if (code[p] == '+' && code[p + 1] == '=') {
        Emit(src, p, "order-dependent-accumulation");
      }
    }
  }

  // Rules: std-rand, random-device, wall-clock.
  void ScanCalls(const Source& src) {
    const std::string& code = src.code();
    struct Pattern {
      const char* token;
      const char* rule;
      bool needs_call = false;  // Must be followed by '('.
    };
    constexpr Pattern kPatterns[] = {
        {"srand", "std-rand", true},
        {"rand", "std-rand", true},
        {"random_device", "random-device"},
        {"time", "wall-clock", true},
        {"gettimeofday", "wall-clock", true},
        {"clock", "wall-clock", true},
        {"system_clock", "wall-clock"},
        {"steady_clock", "wall-clock"},
        {"high_resolution_clock", "wall-clock"},
        {"__DATE__", "wall-clock"},
        {"__TIME__", "wall-clock"},
        {"__TIMESTAMP__", "wall-clock"},
    };
    for (const Pattern& p : kPatterns) {
      size_t pos = 0;
      const std::string token = p.token;
      while ((pos = code.find(token, pos)) != std::string::npos) {
        if (!TokenAt(code, pos, token)) {
          pos += token.size();
          continue;
        }
        // Member access like `obj.rand` or `x.time` is a method of that
        // object, not the libc symbol. Qualified `std::rand` still
        // matches: the bare token is found after the "::".
        if (pos >= 1 && code[pos - 1] == '.') {
          pos += token.size();
          continue;
        }
        if (p.needs_call) {
          size_t after = pos + token.size();
          while (after < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[after]))) {
            ++after;
          }
          if (after >= code.size() || code[after] != '(') {
            pos += token.size();
            continue;
          }
        }
        Emit(src, pos, p.rule);
        pos += token.size();
      }
    }
  }

  // Rule: pointer-keyed-order — std::map< T* , ...> / std::set<T*>.
  void ScanPointerKeys(const Source& src) {
    const std::string& code = src.code();
    for (const char* type : {"map", "set", "multimap", "multiset"}) {
      size_t pos = 0;
      const std::string token = type;
      while ((pos = code.find(token, pos)) != std::string::npos) {
        if (!TokenAt(code, pos, token) ||
            code.find('<', pos) != pos + token.size()) {
          pos += token.size();
          continue;
        }
        const size_t open = pos + token.size();
        const size_t close = MatchAngle(code, open);
        if (close == std::string::npos) {
          pos += token.size();
          continue;
        }
        // Key type: first template argument at depth 1.
        int depth = 0;
        size_t key_end = close;
        for (size_t i = open; i <= close; ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>') --depth;
          if (code[i] == ',' && depth == 1) {
            key_end = i;
            break;
          }
        }
        std::string key = code.substr(open + 1, key_end - open - 1);
        while (!key.empty() &&
               std::isspace(static_cast<unsigned char>(key.back()))) {
          key.pop_back();
        }
        if (!key.empty() && key.back() == '*') {
          Emit(src, pos, "pointer-keyed-order");
        }
        pos = close;
      }
    }
  }

  std::vector<Finding>* out_;
  std::set<std::string> unordered_names_;
};

// tools/lint_rules.md is the concatenation of all three tools'
// --rules-md output; detlint runs first, so it carries the file header.
constexpr char kMdPreamble[] =
    "# Lint rules\n"
    "\n"
    "Generated from each tool's `kRules` table — do not edit by hand.\n"
    "The `lint_rules_md_in_sync` ctest diffs this file against the\n"
    "generators; regenerate with:\n"
    "\n"
    "    build/tools/detlint   --rules-md >  tools/lint_rules.md\n"
    "    build/tools/parlint   --rules-md >> tools/lint_rules.md\n"
    "    build/tools/flowlint  --rules-md >> tools/lint_rules.md\n"
    "    build/tools/codeclint --rules-md >> tools/lint_rules.md\n"
    "\n"
    "All four linters share the liblint driver (`tools/liblint/`):\n"
    "inline waivers are `// <tool>:allow(<rule>[,<rule>...]): reason`\n"
    "on the offending line or the line above, and `--check-waivers`\n"
    "reports any waiver that suppresses zero findings (DESIGN.md §11).\n"
    "\n";

}  // namespace

int main(int argc, char** argv) {
  liblint::Tool tool;
  tool.name = "detlint";
  tool.tagline =
      "nondeterminism hazards on the consensus-critical path (DESIGN.md §7)";
  tool.md_preamble = kMdPreamble;
  tool.rules = kRules;
  tool.rule_count = sizeof(kRules) / sizeof(kRules[0]);
  tool.scan = [](const Source& src, std::vector<Finding>* out) {
    Scanner scanner(out);
    scanner.ScanFile(src);
  };
  return liblint::RunLinter(tool, argc, argv);
}
