// codeclint — whole-program field-coverage analysis for codecs,
// digests, and signatures.
//
// Every consensus guarantee in this repo bottoms out in byte-exact
// serialization: the unified-parameter/plan codec, block and state
// golden vectors, and the domain-separated Transaction::SigningDigest.
// A struct member added without a matching Encode/Decode/Digest update
// is a silent consensus split or a signature-malleability hole — an
// unsigned field an adversary can mutate in flight. detlint, parlint,
// and flowlint enforce HOW code computes; codeclint enforces WHAT the
// bytes cover.
//
// The analysis pairs each serialized record (liblint ExtractRecords)
// with its codec and digest functions (liblint ExtractFunctions):
//   encode set   method `R::Encode`, plus free `Encode*` functions
//                taking an `R` parameter (EncodeHeader(const
//                BlockHeader&), EncodeAccountState(const Account&));
//   decode set   method `R::Decode`, plus free `Decode*` functions
//                returning `R` / `Result<R>`;
//   digest set   methods of R named Id, SigningDigest, Hash, or
//                Digest — only consulted for codec-paired records, so
//                an internal class with a Hash() helper is not dragged
//                into coverage.
// Field references are token matches inside the paired bodies and, for
// delegation (EncodeBlock → header.Encode()), inside the R-restricted
// call closure: calls are followed only into other methods of R or
// paired functions of R, so coverage never leaks across records.
// Reference ORDER is judged by the LAST occurrence of each field — a
// size-prelude `reserve(96 + payload.size())` mentions fields early
// without affecting wire order.
//
// Nested expansion: a field whose type names another extracted record
// X that has no pairing of its own (MergingGameConfig inside
// UnifiedParameters) pulls X's members into the outer record's
// coverage obligation. Single-field wrapper types (Hash256, Address,
// ProofNode) are exempt — they serialize atomically.
//
// The per-record member manifest is checked in at
// tools/codeclint/fields.json and regenerated with `--manifest <file>
// --write-manifest`; rule 5 (field-manifest-drift) fails CI when the
// extracted members and the checked-in manifest diverge, so ADDING a
// member forces a conscious codec decision in the same diff.
//
// Like its siblings this is a heuristic token-level scanner on the
// shared liblint driver, not a compiler plugin: it errs toward
// flagging, and deliberately unserialized fields (derived caches like
// Account::digest_valid_) carry
// `// codeclint:allow(<rule>): justification` waivers.
//
// Usage:
//   codeclint [--report <file.json>] [--sarif <file.sarif>]
//             [--root <dir>] [--manifest <file.json>]
//             [--write-manifest] [--list-rules] [--rules-md]
//             [--check-waivers] <dir-or-file>...
//
// Exit codes: 0 = clean, 1 = usage / IO error, 2 = unsuppressed
// findings present.

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "liblint/liblint.h"

namespace {

using liblint::CallSite;
using liblint::EmitFinding;
using liblint::ExtractCallSites;
using liblint::ExtractFunctions;
using liblint::ExtractRecords;
using liblint::Finding;
using liblint::FunctionDef;
using liblint::JsonEscape;
using liblint::MatchParen;
using liblint::RecordDef;
using liblint::RecordField;
using liblint::RuleInfo;
using liblint::Source;
using liblint::TokenAt;

constexpr RuleInfo kRules[] = {
    {"codec-missing-field",
     "a member of an Encode-bearing record is never referenced in its "
     "Encode set (including the R-restricted call closure and nested "
     "config expansion); the member silently falls out of the wire "
     "bytes, so two nodes can disagree while their codecs both "
     "\"succeed\""},
    {"encode-decode-drift",
     "a record's Encode and Decode reference different member sets, or "
     "reference the members in a different order (judged by last "
     "occurrence); round-trip identity is broken even though each side "
     "individually parses"},
    {"digest-missing-field",
     "a member of a codec-paired record is absent from every function "
     "reachable from its digest roots (Id/SigningDigest/Hash/Digest); "
     "objects differing only in that member collide under the digest — "
     "waivable ONLY for derived/cache fields (e.g. digest_valid_), "
     "each with a justification comment"},
    {"unsigned-mutable-field",
     "a member of a signed record (one bearing SigningDigest) is read "
     "by consensus execution but absent from the signing digest's "
     "closure; an adversary can mutate it in flight without "
     "invalidating the signature"},
    {"field-manifest-drift",
     "the extracted per-record member manifest differs from the "
     "checked-in tools/codeclint/fields.json; not waivable — "
     "regenerate with `--manifest <file> --write-manifest` so the "
     "review diff shows exactly which members changed"},
};

// Method names that make a codec-paired record's digest set.
constexpr const char* kDigestNames[] = {"Id", "SigningDigest", "Hash",
                                        "Digest"};

// Consensus execution entry points (matched by last name component):
// the readers whose field accesses define "read by execution" for
// rule 4.
constexpr const char* kExecutionRoots[] = {"ExecuteTransactions",
                                           "ExecuteCandidatesParallel"};

// Nested expansion exempts single-field wrappers (Hash256, Address,
// ProofNode): a record used as a field type must have at least this
// many members before its members join the outer coverage obligation.
constexpr size_t kExpandMinFields = 2;

std::string LastComponent(const std::string& qualified) {
  const size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

std::string ClassPrefix(const std::string& name) {
  const size_t sep = name.rfind("::");
  return sep == std::string::npos ? std::string() : name.substr(0, sep);
}

// True when `token` occurs on identifier boundaries anywhere in
// [begin, end) of `s` and names a type there. An occurrence followed
// by `::` is a QUALIFIER (`MerklePatriciaTrie::Proof` names Proof, not
// the trie class); one followed by `<` is a template wrapper
// (`Result<Block>` names Block, not Result). Neither counts.
bool TokenInRange(const std::string& s, size_t begin, size_t end,
                  const std::string& token) {
  size_t pos = begin;
  while ((pos = s.find(token, pos)) != std::string::npos && pos < end) {
    if (TokenAt(s, pos, token)) {
      size_t after = pos + token.size();
      while (after < s.size() &&
             std::isspace(static_cast<unsigned char>(s[after]))) {
        ++after;
      }
      const bool qualifier = after + 1 < s.size() && s[after] == ':' &&
                             s[after + 1] == ':';
      const bool wrapper = after < s.size() && s[after] == '<';
      if (!qualifier && !wrapper) return true;
    }
    pos += token.size();
  }
  return false;
}

// ------------------------------ Analysis --------------------------------

struct Edge {
  size_t callee = 0;
  size_t offset = 0;
};

struct Fn {
  FunctionDef def;
  size_t src_index = 0;
  std::string last;    // Last name component.
  std::string prefix;  // Qualifier ("Transaction" for its methods).
  std::string params;  // Parameter-list text.
  std::string ret;     // Return-type text (before the name).
  std::vector<Edge> edges;
};

struct Rec {
  RecordDef def;
  size_t src_index = 0;
  std::vector<size_t> encode_fns;
  std::vector<size_t> decode_fns;
  std::vector<size_t> digest_fns;
  bool paired() const {
    return !encode_fns.empty() || !decode_fns.empty();
  }
};

// One nested-expansion obligation: paired record `outer` embeds
// unpaired record `inner` through field `via`.
struct Expansion {
  size_t outer = 0;  // Index into recs_.
  size_t inner = 0;
  std::string via;
};

using ManifestMap = std::map<std::string, std::vector<std::string>>;

class Analysis {
 public:
  explicit Analysis(const std::vector<Source>& sources)
      : sources_(sources) {}

  void Run() {
    IndexFunctions();
    BuildEdges();
    IndexRecords();
    PairRecords();
    FindExpansions();
  }

  void EmitCodecMissingField(std::vector<Finding>* out) const;
  void EmitEncodeDecodeDrift(std::vector<Finding>* out) const;
  void EmitDigestMissingField(std::vector<Finding>* out) const;
  void EmitUnsignedMutableField(std::vector<Finding>* out) const;

  // The per-record member manifest: paired records (declaration-order
  // member names), expanded nested configs, and enums used as field
  // types of paired records (enumerator names — adding an enumerator
  // changes the wire meaning of the stored byte).
  ManifestMap Manifest() const;

 private:
  void IndexFunctions() {
    for (size_t s = 0; s < sources_.size(); ++s) {
      const std::string& code = sources_[s].code();
      for (FunctionDef& def : ExtractFunctions(sources_[s])) {
        Fn fn;
        fn.def = std::move(def);
        fn.src_index = s;
        fn.last = LastComponent(fn.def.name);
        fn.prefix = ClassPrefix(fn.def.name);
        // Parameter list: the first '(' after the name (and before the
        // body) opens it.
        size_t open = code.find('(', fn.def.name_pos);
        if (open != std::string::npos && open < fn.def.body_open) {
          const size_t close = MatchParen(code, open);
          if (close != std::string::npos && close < fn.def.body_open) {
            fn.params = code.substr(open + 1, close - open - 1);
          }
        }
        // Return type: the text between the previous declaration
        // boundary and the name.
        size_t rb = fn.def.name_pos;
        while (rb > 0 && code[rb - 1] != ';' && code[rb - 1] != '{' &&
               code[rb - 1] != '}') {
          --rb;
        }
        fn.ret = code.substr(rb, fn.def.name_pos - rb);
        by_name_[fn.def.name].push_back(fns_.size());
        by_last_[fn.last].push_back(fns_.size());
        fns_.push_back(std::move(fn));
      }
    }
  }

  // Call resolution, over-approximating by design (same policy as
  // flowlint): `std::`-qualified callees are leaves; a qualified
  // callee resolves to exact matches; an unqualified callee from
  // inside class C prefers C's member, else every function with that
  // last component.
  void BuildEdges() {
    for (Fn& fn : fns_) {
      const Source& src = sources_[fn.src_index];
      for (const CallSite& call : ExtractCallSites(
               src, fn.def.body_open + 1, fn.def.body_close)) {
        if (call.callee.rfind("std::", 0) == 0) continue;
        std::vector<size_t> targets;
        if (call.callee.find("::") != std::string::npos) {
          auto it = by_name_.find(call.callee);
          if (it != by_name_.end()) targets = it->second;
        } else {
          if (!fn.prefix.empty()) {
            auto it = by_name_.find(fn.prefix + "::" + call.callee);
            if (it != by_name_.end()) targets = it->second;
          }
          if (targets.empty()) {
            auto it = by_last_.find(call.callee);
            if (it != by_last_.end()) targets = it->second;
          }
        }
        for (size_t t : targets) fn.edges.push_back({t, call.offset});
      }
    }
  }

  void IndexRecords() {
    for (size_t s = 0; s < sources_.size(); ++s) {
      for (RecordDef& def : ExtractRecords(sources_[s])) {
        Rec rec;
        rec.def = std::move(def);
        rec.src_index = s;
        rec_by_last_[LastComponent(rec.def.name)].push_back(recs_.size());
        recs_.push_back(std::move(rec));
      }
    }
  }

  void PairRecords() {
    for (size_t f = 0; f < fns_.size(); ++f) {
      const Fn& fn = fns_[f];
      // Methods pair by exact qualifier.
      if (!fn.prefix.empty()) {
        if (fn.last == "Encode" || fn.last == "Decode") {
          for (size_t r : RecordsNamed(fn.prefix)) {
            (fn.last == "Encode" ? recs_[r].encode_fns
                                 : recs_[r].decode_fns)
                .push_back(f);
          }
          continue;
        }
      }
      // Free `EncodeX(const R&)` pairs through the parameter list;
      // free `DecodeX() -> Result<R>` through the return type.
      if (fn.last.rfind("Encode", 0) == 0 && fn.last != "Encode") {
        for (size_t r = 0; r < recs_.size(); ++r) {
          if (recs_[r].def.kind == "enum") continue;
          const std::string token = LastComponent(recs_[r].def.name);
          if (TokenInRange(fn.params, 0, fn.params.size(), token)) {
            recs_[r].encode_fns.push_back(f);
          }
        }
      }
      if (fn.last.rfind("Decode", 0) == 0 && fn.last != "Decode") {
        for (size_t r = 0; r < recs_.size(); ++r) {
          if (recs_[r].def.kind == "enum") continue;
          const std::string token = LastComponent(recs_[r].def.name);
          if (TokenInRange(fn.ret, 0, fn.ret.size(), token)) {
            recs_[r].decode_fns.push_back(f);
          }
        }
      }
    }
    // Digest roots only join codec-paired records, so an internal
    // class with a Hash() helper stays out of coverage.
    for (size_t f = 0; f < fns_.size(); ++f) {
      const Fn& fn = fns_[f];
      if (fn.prefix.empty()) continue;
      bool digest_name = false;
      for (const char* name : kDigestNames) {
        if (fn.last == name) digest_name = true;
      }
      if (!digest_name) continue;
      for (size_t r : RecordsNamed(fn.prefix)) {
        if (recs_[r].paired()) recs_[r].digest_fns.push_back(f);
      }
    }
  }

  std::vector<size_t> RecordsNamed(const std::string& name) const {
    std::vector<size_t> out;
    auto it = rec_by_last_.find(LastComponent(name));
    if (it == rec_by_last_.end()) return out;
    for (size_t r : it->second) {
      // A bare prefix matches a record by last component ("Inner"
      // methods inside Outer) or by full qualified name.
      if (recs_[r].def.name == name ||
          LastComponent(recs_[r].def.name) == name) {
        out.push_back(r);
      }
    }
    return out;
  }

  // A field whose type names an UNPAIRED multi-field record pulls that
  // record's members into the outer coverage obligation.
  void FindExpansions() {
    for (size_t r = 0; r < recs_.size(); ++r) {
      const Rec& rec = recs_[r];
      if (!rec.paired() || rec.def.kind == "enum") continue;
      for (const RecordField& field : rec.def.fields) {
        if (field.is_static) continue;
        for (size_t x = 0; x < recs_.size(); ++x) {
          const Rec& inner = recs_[x];
          if (x == r || inner.paired() || inner.def.kind == "enum") {
            continue;
          }
          const std::string token = LastComponent(inner.def.name);
          if (!TokenInRange(field.type, 0, field.type.size(), token)) {
            continue;
          }
          size_t member_count = 0;
          for (const RecordField& g : inner.def.fields) {
            if (!g.is_static) ++member_count;
          }
          if (member_count < kExpandMinFields) continue;
          expansions_.push_back({r, x, field.name});
        }
      }
    }
  }

  // True when `fn` participates in `rec`'s coverage: a method of the
  // record, or one of its paired codec/digest functions.
  bool Related(const Rec& rec, size_t fn_index) const {
    const Fn& fn = fns_[fn_index];
    if (!fn.prefix.empty() &&
        (fn.prefix == rec.def.name ||
         fn.prefix == LastComponent(rec.def.name))) {
      return true;
    }
    for (const std::vector<size_t>* set :
         {&rec.encode_fns, &rec.decode_fns, &rec.digest_fns}) {
      for (size_t i : *set) {
        if (i == fn_index) return true;
      }
    }
    return false;
  }

  // BFS from `starts`, following calls only into R-related functions —
  // delegation like EncodeBlock → header.Encode() is covered without
  // leaking another record's references in.
  std::vector<size_t> Closure(const Rec& rec,
                              const std::vector<size_t>& starts) const {
    std::vector<size_t> out;
    std::set<size_t> visited;
    std::deque<size_t> queue;
    for (size_t s : starts) {
      if (visited.insert(s).second) {
        queue.push_back(s);
        out.push_back(s);
      }
    }
    while (!queue.empty()) {
      const size_t at = queue.front();
      queue.pop_front();
      for (const Edge& e : fns_[at].edges) {
        if (visited.count(e.callee) > 0 || !Related(rec, e.callee)) {
          continue;
        }
        visited.insert(e.callee);
        queue.push_back(e.callee);
        out.push_back(e.callee);
      }
    }
    return out;
  }

  // Token references to `names` inside fn's body: name -> offset of
  // the LAST occurrence.
  std::map<std::string, size_t> DirectRefs(
      size_t fn_index, const std::vector<std::string>& names) const {
    const Fn& fn = fns_[fn_index];
    const std::string& code = sources_[fn.src_index].code();
    std::map<std::string, size_t> out;
    for (const std::string& name : names) {
      size_t pos = fn.def.body_open + 1;
      while ((pos = code.find(name, pos)) != std::string::npos &&
             pos < fn.def.body_close) {
        if (TokenAt(code, pos, name)) out[name] = pos;
        pos += name.size();
      }
    }
    return out;
  }

  // Union of DirectRefs over an R-restricted closure.
  std::set<std::string> ClosureRefs(
      const Rec& rec, const std::vector<size_t>& starts,
      const std::vector<std::string>& names) const {
    std::set<std::string> out;
    for (size_t f : Closure(rec, starts)) {
      for (const auto& [name, offset] : DirectRefs(f, names)) {
        out.insert(name);
      }
    }
    return out;
  }

  std::vector<std::string> OwnFieldNames(const Rec& rec) const {
    std::vector<std::string> names;
    for (const RecordField& f : rec.def.fields) {
      if (!f.is_static) names.push_back(f.name);
    }
    return names;
  }

  // Own field names plus every expanded inner member — the full
  // coverage obligation of a paired record.
  std::vector<std::string> ObligationNames(size_t rec_index) const {
    std::vector<std::string> names = OwnFieldNames(recs_[rec_index]);
    for (const Expansion& e : expansions_) {
      if (e.outer != rec_index) continue;
      for (const std::string& g : OwnFieldNames(recs_[e.inner])) {
        names.push_back(g);
      }
    }
    return names;
  }

  std::string FnHop(size_t fn_index) const {
    const Fn& fn = fns_[fn_index];
    const Source& src = sources_[fn.src_index];
    return fn.def.name + " (" + src.path() + ":" +
           std::to_string(src.LineOf(fn.def.name_pos)) + ")";
  }

  std::string SetHops(const std::vector<size_t>& set) const {
    std::string out;
    for (size_t f : set) out += (out.empty() ? "" : ", ") + FnHop(f);
    return out;
  }

  const std::vector<Source>& sources_;
  std::vector<Fn> fns_;
  std::vector<Rec> recs_;
  std::vector<Expansion> expansions_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::map<std::string, std::vector<size_t>> by_last_;
  std::map<std::string, std::vector<size_t>> rec_by_last_;
};

// Rule 1: codec-missing-field. Findings sit on the field declaration,
// so a waiver (with its justification) documents the field itself.
void Analysis::EmitCodecMissingField(std::vector<Finding>* out) const {
  for (size_t r = 0; r < recs_.size(); ++r) {
    const Rec& rec = recs_[r];
    if (rec.encode_fns.empty() || rec.def.kind == "enum") continue;
    const std::vector<std::string> names = ObligationNames(r);
    const std::set<std::string> covered =
        ClosureRefs(rec, rec.encode_fns, names);
    for (const RecordField& f : rec.def.fields) {
      if (f.is_static || covered.count(f.name) > 0) continue;
      EmitFinding(sources_[rec.src_index], f.name_pos,
                  "codec-missing-field",
                  rec.def.name + "." + f.name +
                      " never referenced from its Encode set: " +
                      SetHops(rec.encode_fns),
                  out);
    }
    for (const Expansion& e : expansions_) {
      if (e.outer != r) continue;
      const Rec& inner = recs_[e.inner];
      for (const RecordField& g : inner.def.fields) {
        if (g.is_static || covered.count(g.name) > 0) continue;
        EmitFinding(sources_[inner.src_index], g.name_pos,
                    "codec-missing-field",
                    inner.def.name + "." + g.name + " (embedded via " +
                        rec.def.name + "." + e.via +
                        ") never referenced from the Encode set: " +
                        SetHops(rec.encode_fns),
                    out);
      }
    }
  }
}

// Rule 2: encode-decode-drift — member-set differences attribute to
// the field declaration; order differences to the primary Decode.
void Analysis::EmitEncodeDecodeDrift(std::vector<Finding>* out) const {
  for (size_t r = 0; r < recs_.size(); ++r) {
    const Rec& rec = recs_[r];
    if (rec.encode_fns.empty() || rec.decode_fns.empty() ||
        rec.def.kind == "enum") {
      continue;
    }
    const std::vector<std::string> names = ObligationNames(r);
    const std::set<std::string> enc =
        ClosureRefs(rec, rec.encode_fns, names);
    const std::set<std::string> dec =
        ClosureRefs(rec, rec.decode_fns, names);
    auto emit_set_drift = [&](const Rec& holder, const RecordField& f,
                              const char* present, const char* absent) {
      EmitFinding(sources_[holder.src_index], f.name_pos,
                  "encode-decode-drift",
                  rec.def.name + "." + f.name + " referenced by " +
                      present + " but not by " + absent +
                      " — round-trip cannot be the identity",
                  out);
    };
    auto check_fields = [&](const Rec& holder) {
      for (const RecordField& f : holder.def.fields) {
        if (f.is_static) continue;
        const bool in_enc = enc.count(f.name) > 0;
        const bool in_dec = dec.count(f.name) > 0;
        // Absent from BOTH is rule 1's finding, not drift.
        if (in_enc && !in_dec) {
          emit_set_drift(holder, f, "Encode", "Decode");
        } else if (!in_enc && in_dec) {
          emit_set_drift(holder, f, "Decode", "Encode");
        }
      }
    };
    check_fields(rec);
    for (const Expansion& e : expansions_) {
      if (e.outer == r) check_fields(recs_[e.inner]);
    }

    // Order: compare the last-occurrence sequence of the record's own
    // members in the primary (most-referencing) Encode and Decode.
    const std::vector<std::string> own = OwnFieldNames(rec);
    auto primary = [&](const std::vector<size_t>& set) {
      size_t best = set.front();
      size_t best_count = 0;
      for (size_t f : set) {
        const size_t count = DirectRefs(f, own).size();
        if (count > best_count) {
          best = f;
          best_count = count;
        }
      }
      return best;
    };
    auto sequence = [&](size_t fn_index) {
      const std::map<std::string, size_t> refs = DirectRefs(fn_index, own);
      std::vector<std::pair<size_t, std::string>> ordered;
      for (const auto& [name, offset] : refs) {
        ordered.emplace_back(offset, name);
      }
      std::sort(ordered.begin(), ordered.end());
      std::vector<std::string> seq;
      for (const auto& [offset, name] : ordered) seq.push_back(name);
      return seq;
    };
    const size_t enc_primary = primary(rec.encode_fns);
    const size_t dec_primary = primary(rec.decode_fns);
    std::vector<std::string> enc_seq = sequence(enc_primary);
    std::vector<std::string> dec_seq = sequence(dec_primary);
    // Restrict to members both sides reference; set differences were
    // already reported above.
    auto restrict_to = [](const std::vector<std::string>& seq,
                          const std::vector<std::string>& other) {
      std::set<std::string> keep(other.begin(), other.end());
      std::vector<std::string> out_seq;
      for (const std::string& name : seq) {
        if (keep.count(name) > 0) out_seq.push_back(name);
      }
      return out_seq;
    };
    const std::vector<std::string> enc_common = restrict_to(enc_seq, dec_seq);
    const std::vector<std::string> dec_common = restrict_to(dec_seq, enc_seq);
    if (enc_common != dec_common) {
      auto join = [](const std::vector<std::string>& seq) {
        std::string s;
        for (const std::string& name : seq) {
          s += (s.empty() ? "" : ", ") + name;
        }
        return s;
      };
      const Fn& dec_fn = fns_[dec_primary];
      EmitFinding(sources_[dec_fn.src_index], dec_fn.def.name_pos,
                  "encode-decode-drift",
                  rec.def.name + ": " + FnHop(enc_primary) +
                      " orders [" + join(enc_common) + "] but " +
                      FnHop(dec_primary) + " orders [" + join(dec_common) +
                      "]",
                  out);
    }
  }
}

// Rule 3: digest-missing-field — a member absent from EVERY digest
// root's closure. Waivable only for derived/cache fields; the waiver's
// justification comment is the review surface for that policy.
void Analysis::EmitDigestMissingField(std::vector<Finding>* out) const {
  for (size_t r = 0; r < recs_.size(); ++r) {
    const Rec& rec = recs_[r];
    if (rec.digest_fns.empty() || rec.def.kind == "enum") continue;
    const std::vector<std::string> names = ObligationNames(r);
    const std::set<std::string> covered =
        ClosureRefs(rec, rec.digest_fns, names);
    auto check_fields = [&](const Rec& holder, const std::string& via) {
      for (const RecordField& f : holder.def.fields) {
        if (f.is_static || covered.count(f.name) > 0) continue;
        EmitFinding(sources_[holder.src_index], f.name_pos,
                    "digest-missing-field",
                    holder.def.name + "." + f.name + via +
                        " absent from every digest root: " +
                        SetHops(rec.digest_fns),
                    out);
      }
    };
    check_fields(rec, "");
    for (const Expansion& e : expansions_) {
      if (e.outer == r) {
        check_fields(recs_[e.inner],
                     " (embedded via " + rec.def.name + "." + e.via + ")");
      }
    }
  }
}

// Rule 4: unsigned-mutable-field — a member of a signed record read by
// consensus execution (member access reachable from the execution
// roots) but absent from the signing digest's closure.
void Analysis::EmitUnsignedMutableField(std::vector<Finding>* out) const {
  // The execution closure: full-graph BFS from the execution roots.
  std::vector<size_t> exec;
  {
    std::set<size_t> visited;
    std::deque<size_t> queue;
    for (size_t f = 0; f < fns_.size(); ++f) {
      for (const char* root : kExecutionRoots) {
        if (fns_[f].last == root && visited.insert(f).second) {
          queue.push_back(f);
          exec.push_back(f);
        }
      }
    }
    while (!queue.empty()) {
      const size_t at = queue.front();
      queue.pop_front();
      for (const Edge& e : fns_[at].edges) {
        if (visited.insert(e.callee).second) {
          queue.push_back(e.callee);
          exec.push_back(e.callee);
        }
      }
    }
  }
  if (exec.empty()) return;

  for (size_t r = 0; r < recs_.size(); ++r) {
    const Rec& rec = recs_[r];
    std::vector<size_t> signing;
    for (size_t f : rec.digest_fns) {
      if (fns_[f].last == "SigningDigest") signing.push_back(f);
    }
    if (signing.empty()) continue;
    const std::vector<std::string> names = ObligationNames(r);
    const std::set<std::string> signed_refs =
        ClosureRefs(rec, signing, names);
    for (const RecordField& f : rec.def.fields) {
      if (f.is_static || signed_refs.count(f.name) > 0) continue;
      // Member access (`.name` / `->name`) inside the execution
      // closure counts as an execution read.
      size_t reader = fns_.size();
      size_t read_offset = 0;
      for (size_t e : exec) {
        const Fn& fn = fns_[e];
        const std::string& code = sources_[fn.src_index].code();
        size_t pos = fn.def.body_open + 1;
        while ((pos = code.find(f.name, pos)) != std::string::npos &&
               pos < fn.def.body_close) {
          const bool dot = pos > 0 && code[pos - 1] == '.';
          const bool arrow = pos > 1 && code[pos - 2] == '-' &&
                             code[pos - 1] == '>';
          if (TokenAt(code, pos, f.name) && (dot || arrow)) {
            reader = e;
            read_offset = pos;
            break;
          }
          pos += f.name.size();
        }
        if (reader != fns_.size()) break;
      }
      if (reader == fns_.size()) continue;
      const Fn& fn = fns_[reader];
      const Source& fn_src = sources_[fn.src_index];
      EmitFinding(sources_[rec.src_index], f.name_pos,
                  "unsigned-mutable-field",
                  rec.def.name + "." + f.name + " read by " +
                      FnHop(reader) + " at " + fn_src.path() + ":" +
                      std::to_string(fn_src.LineOf(read_offset)) +
                      " but absent from the signing closure of " +
                      SetHops(signing),
                  out);
    }
  }
}

ManifestMap Analysis::Manifest() const {
  ManifestMap out;
  std::set<size_t> extra;  // Expanded records and field-type enums.
  for (size_t r = 0; r < recs_.size(); ++r) {
    const Rec& rec = recs_[r];
    if (!rec.paired() || rec.def.kind == "enum") continue;
    out[rec.def.name] = OwnFieldNames(rec);
    // Enums used as field types: their enumerator lists are part of
    // the wire contract (the stored byte's meaning).
    for (const RecordField& f : rec.def.fields) {
      for (size_t x = 0; x < recs_.size(); ++x) {
        if (recs_[x].def.kind != "enum") continue;
        const std::string token = LastComponent(recs_[x].def.name);
        if (TokenInRange(f.type, 0, f.type.size(), token)) {
          extra.insert(x);
        }
      }
    }
  }
  for (const Expansion& e : expansions_) extra.insert(e.inner);
  for (size_t x : extra) {
    ManifestMap::mapped_type names;
    for (const RecordField& f : recs_[x].def.fields) {
      if (!f.is_static) names.push_back(f.name);
    }
    out[recs_[x].def.name] = std::move(names);
  }
  return out;
}

// ------------------------------ Manifest IO ------------------------------

bool WriteManifest(const std::string& path, const ManifestMap& manifest) {
  std::ofstream out(path);
  out << "{\n  \"tool\": \"codeclint\",\n  \"version\": 1,\n"
      << "  \"records\": [";
  size_t i = 0;
  for (const auto& [name, fields] : manifest) {
    out << (i++ == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << JsonEscape(name) << "\", \"fields\": [";
    size_t j = 0;
    for (const std::string& f : fields) {
      out << (j++ == 0 ? "" : ", ") << "\"" << JsonEscape(f) << "\"";
    }
    out << "]}";
  }
  out << (manifest.empty() ? "]\n" : "\n  ]\n") << "}\n";
  out.flush();
  return out.good();
}

// Minimal reader for the exact shape WriteManifest produces (plus
// whitespace tolerance).
bool ParseManifest(const std::string& text, ManifestMap* out) {
  size_t pos = 0;
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    size_t q = text.find('"', text.find(':', pos) + 1);
    if (q == std::string::npos) return false;
    size_t qe = text.find('"', q + 1);
    if (qe == std::string::npos) return false;
    const std::string name = text.substr(q + 1, qe - q - 1);
    const size_t fields_key = text.find("\"fields\"", qe);
    if (fields_key == std::string::npos) return false;
    const size_t open = text.find('[', fields_key);
    const size_t close = text.find(']', fields_key);
    if (open == std::string::npos || close == std::string::npos) {
      return false;
    }
    std::vector<std::string> fields;
    size_t t = open;
    while ((t = text.find('"', t + 1)) != std::string::npos && t < close) {
      const size_t te = text.find('"', t + 1);
      if (te == std::string::npos || te > close) return false;
      fields.push_back(text.substr(t + 1, te - t - 1));
      t = te;
    }
    (*out)[name] = std::move(fields);
    pos = close;
  }
  return true;
}

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string out;
  for (const std::string& f : fields) out += (out.empty() ? "" : ", ") + f;
  return out;
}

// Rule 5: field-manifest-drift. Findings attribute to the manifest
// file itself; there is no source line to waive on, and drift is never
// acceptable — the fix is always to regenerate and review the diff.
void CheckManifestDrift(const std::string& path, const ManifestMap& computed,
                        std::vector<Finding>* out) {
  std::ifstream in(path, std::ios::binary);
  ManifestMap recorded;
  bool parsed = false;
  if (in) {
    std::stringstream buffer;
    buffer << in.rdbuf();
    parsed = ParseManifest(buffer.str(), &recorded);
  }
  auto drift = [&](const std::string& message) {
    Finding f;
    f.file = path;
    f.line = 1;
    f.rule = "field-manifest-drift";
    f.snippet = message + "; regenerate with --write-manifest";
    f.suppressed = false;
    out->push_back(std::move(f));
  };
  if (!parsed) {
    drift("manifest file missing or unparsable");
    return;
  }
  for (const auto& [name, fields] : computed) {
    auto it = recorded.find(name);
    if (it == recorded.end()) {
      drift("manifest missing record \"" + name + "\" (extracted: " +
            JoinFields(fields) + ")");
    } else if (it->second != fields) {
      drift("manifest for \"" + name + "\" lists [" +
            JoinFields(it->second) + "] but extraction finds [" +
            JoinFields(fields) + "]");
    }
  }
  for (const auto& [name, fields] : recorded) {
    if (computed.count(name) == 0) {
      drift("manifest lists \"" + name +
            "\" which is no longer extracted as a serialized record");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip codeclint's own flags before handing the rest to the shared
  // driver.
  std::string manifest_path;
  bool write_manifest = false;
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--write-manifest") {
      write_manifest = true;
    } else {
      pass.push_back(argv[i]);
    }
  }
  if (write_manifest && manifest_path.empty()) {
    std::cerr << "codeclint: --write-manifest requires --manifest <file>\n";
    return 1;
  }

  liblint::Tool tool;
  tool.name = "codeclint";
  tool.tagline =
      "whole-program field-coverage analysis for codecs, digests, and "
      "signatures";
  tool.rules = kRules;
  tool.rule_count = sizeof(kRules) / sizeof(kRules[0]);
  bool manifest_write_failed = false;
  tool.scan_program = [&](const std::vector<Source>& sources,
                          std::vector<Finding>* out) {
    Analysis analysis(sources);
    analysis.Run();
    analysis.EmitCodecMissingField(out);
    analysis.EmitEncodeDecodeDrift(out);
    analysis.EmitDigestMissingField(out);
    analysis.EmitUnsignedMutableField(out);
    if (write_manifest) {
      if (!WriteManifest(manifest_path, analysis.Manifest())) {
        manifest_write_failed = true;
      }
    } else if (!manifest_path.empty()) {
      CheckManifestDrift(manifest_path, analysis.Manifest(), out);
    }
  };
  const int rc = liblint::RunLinter(tool, static_cast<int>(pass.size()),
                                    pass.data());
  if (manifest_write_failed) {
    std::cerr << "codeclint: cannot write manifest to \"" << manifest_path
              << "\"\n";
    return 1;
  }
  return rc;
}
