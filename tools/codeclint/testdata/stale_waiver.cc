// codeclint fixture: clean code carrying a waiver that suppresses
// nothing. The plain scan passes; --check-waivers must fail it with
// stale-waiver.
#include <cstdint>
#include <vector>

using Bytes = std::vector<unsigned char>;

struct Voucher {
  // codeclint:allow(codec-missing-field): stale — amount IS encoded
  uint64_t amount = 0;
  uint64_t serial = 0;

  Bytes Encode() const;
};

Bytes Voucher::Encode() const {
  Bytes out;
  out.push_back(static_cast<unsigned char>(amount));
  out.push_back(static_cast<unsigned char>(serial));
  return out;
}

Voucher DecodeVoucher(const Bytes& data) {
  Voucher v;
  v.amount = data.size() > 0 ? data[0] : 0;
  v.serial = data.size() > 1 ? data[1] : 0;
  return v;
}
