// codeclint fixture: golden report pin. One codec-missing-field and
// one encode-decode-drift finding whose JSON and SARIF renderings are
// diffed byte-for-byte against golden_report.json / golden.sarif.
#include <cstdint>
#include <vector>

using Bytes = std::vector<unsigned char>;

struct Stamp {
  uint64_t epoch = 0;
  uint64_t slot = 0;
  uint64_t nonce = 0;

  Bytes Encode() const;
};

Bytes Stamp::Encode() const {
  Bytes out;
  out.push_back(static_cast<unsigned char>(epoch));
  out.push_back(static_cast<unsigned char>(slot));
  return out;
}

Stamp DecodeStamp(const Bytes& data) {
  Stamp s;
  s.epoch = data.size() > 0 ? data[0] : 0;
  return s;
}
