// codeclint fixture: the contract-compliant twin of hazards.cc — every
// member is encoded, decoded in encode order, digested, and signed, so
// the scan must stay silent.
#include <cstdint>
#include <vector>

using Bytes = std::vector<unsigned char>;

struct Voucher {
  uint64_t amount = 0;
  uint64_t serial = 0;

  Bytes Encode() const;
  uint64_t Id() const;
  uint64_t SigningDigest() const;
};

Bytes Voucher::Encode() const {
  Bytes out;
  out.push_back(static_cast<unsigned char>(amount));
  out.push_back(static_cast<unsigned char>(serial));
  return out;
}

Voucher DecodeVoucher(const Bytes& data) {
  Voucher v;
  v.amount = data.size() > 0 ? data[0] : 0;
  v.serial = data.size() > 1 ? data[1] : 0;
  return v;
}

uint64_t Voucher::Id() const {
  const Bytes bytes = Encode();
  uint64_t acc = 0;
  for (unsigned char b : bytes) acc = acc * 31 + b;
  return acc;
}

uint64_t Voucher::SigningDigest() const {
  return amount * 1000003 + serial;
}

// The execution root only reads signed members.
uint64_t ExecuteTransactions(const Voucher& v) {
  return v.amount + v.SigningDigest();
}
