// codeclint fixture: hazards.cc with every finding waived inline. The
// scan must exit clean, and under --check-waivers every waiver below
// must suppress a real finding (none are stale).
#include <cstdint>
#include <vector>

using Bytes = std::vector<unsigned char>;

struct Voucher {
  uint64_t amount = 0;
  uint64_t serial = 0;
  // codeclint:allow(codec-missing-field,digest-missing-field): fixture
  uint64_t expiry = 0;
  // codeclint:allow(encode-decode-drift): fixture
  uint64_t memo = 0;
  // codeclint:allow(unsigned-mutable-field): fixture
  uint64_t flags = 0;

  Bytes Encode() const;
  uint64_t Id() const;
  uint64_t SigningDigest() const;
};

Bytes Voucher::Encode() const {
  Bytes out;
  out.push_back(static_cast<unsigned char>(amount));
  out.push_back(static_cast<unsigned char>(serial));
  out.push_back(static_cast<unsigned char>(memo));
  out.push_back(static_cast<unsigned char>(flags));
  return out;
}

// codeclint:allow(encode-decode-drift): fixture reads serial first
Voucher DecodeVoucher(const Bytes& data) {
  Voucher v;
  v.serial = data.size() > 1 ? data[1] : 0;
  v.amount = data.size() > 0 ? data[0] : 0;
  v.flags = data.size() > 3 ? data[3] : 0;
  return v;
}

uint64_t Voucher::Id() const {
  const Bytes bytes = Encode();
  uint64_t acc = 0;
  for (unsigned char b : bytes) acc = acc * 31 + b;
  return acc;
}

uint64_t Voucher::SigningDigest() const {
  return amount * 1000003 + serial;
}

uint64_t ExecuteTransactions(const Voucher& v) {
  if (v.flags != 0) return 0;
  return v.SigningDigest();
}

struct Knobs {
  int retries = 0;
  // codeclint:allow(codec-missing-field): fixture
  int window = 0;
};

struct Bundle {
  Knobs knobs;
  uint64_t count = 0;

  Bytes Encode() const;
};

Bytes Bundle::Encode() const {
  Bytes out;
  out.push_back(static_cast<unsigned char>(knobs.retries));
  out.push_back(static_cast<unsigned char>(count));
  return out;
}
