// codeclint fixture: every coverage rule fires at least once.
// Expected findings:
//   codec-missing-field     Voucher.expiry (never encoded),
//                           Knobs.window (embedded via Bundle.knobs)
//   encode-decode-drift     Voucher.memo (encoded, never decoded) and
//                           the order finding at DecodeVoucher
//                           (decode reads serial before amount)
//   digest-missing-field    Voucher.expiry (absent from Id and
//                           SigningDigest alike)
//   unsigned-mutable-field  Voucher.flags (read by the execution root,
//                           absent from the signing closure)
#include <cstdint>
#include <vector>

using Bytes = std::vector<unsigned char>;

struct Voucher {
  uint64_t amount = 0;
  uint64_t serial = 0;
  uint64_t expiry = 0;
  uint64_t memo = 0;
  uint64_t flags = 0;

  Bytes Encode() const;
  uint64_t Id() const;
  uint64_t SigningDigest() const;
};

Bytes Voucher::Encode() const {
  Bytes out;
  out.push_back(static_cast<unsigned char>(amount));
  out.push_back(static_cast<unsigned char>(serial));
  out.push_back(static_cast<unsigned char>(memo));
  out.push_back(static_cast<unsigned char>(flags));
  return out;
}

Voucher DecodeVoucher(const Bytes& data) {
  Voucher v;
  v.serial = data.size() > 1 ? data[1] : 0;
  v.amount = data.size() > 0 ? data[0] : 0;
  v.flags = data.size() > 3 ? data[3] : 0;
  return v;
}

uint64_t Voucher::Id() const {
  const Bytes bytes = Encode();
  uint64_t acc = 0;
  for (unsigned char b : bytes) acc = acc * 31 + b;
  return acc;
}

uint64_t Voucher::SigningDigest() const {
  return amount * 1000003 + serial;
}

// Consensus execution root: reads the unsigned `flags` member.
uint64_t ExecuteTransactions(const Voucher& v) {
  if (v.flags != 0) return 0;
  return v.SigningDigest();
}

// Nested expansion: Knobs has no codec of its own, so its members join
// Bundle's coverage obligation — and `window` is never written.
struct Knobs {
  int retries = 0;
  int window = 0;
};

struct Bundle {
  Knobs knobs;
  uint64_t count = 0;

  Bytes Encode() const;
};

Bytes Bundle::Encode() const {
  Bytes out;
  out.push_back(static_cast<unsigned char>(knobs.retries));
  out.push_back(static_cast<unsigned char>(count));
  return out;
}
